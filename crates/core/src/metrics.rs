//! Characterization metrics for orderings (§3.3 of the paper).
//!
//! Two independent metrics characterize how an order maps a
//! subcommunicator onto the machine:
//!
//! * **Ring cost** — the cost of sending a message around the communicator
//!   in rank order (`rank 0 → 1 → … → m−1`), where a hop inside the lowest
//!   hierarchy level costs 1 and each additional level crossed adds 1. Low
//!   ring cost ⇒ ranks are assigned sequentially (locality); high ⇒
//!   round-robin assignment.
//! * **Percentages of process pairs per level** — of all `C(m,2)` process
//!   pairs of the communicator, the percentage that communicate inside each
//!   hierarchy level (excluding pairs that fit in a smaller level). Entry 0
//!   is the lowest (innermost) level. High percentages in low entries ⇒
//!   *packed* mapping; high percentages in the last entry ⇒ *spread*.
//!
//! Both metrics take the communicator as a list of sequential core ids in
//! rank-in-communicator order, as produced by
//! [`crate::subcomm::subcommunicators`].

use crate::error::Error;
use crate::hierarchy::Hierarchy;
use crate::permutation::Permutation;
use crate::subcomm::{subcommunicators, ColorScheme, SubcommLayout};
use std::collections::BTreeMap;

/// Communication distance between two resources: `0` if equal, else
/// `k − j` where `j` is the outermost level at which their coordinates
/// differ (1 = same lowest level, `k` = crossing the outermost level).
///
/// ```
/// use mre_core::{Hierarchy, metrics};
/// let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
/// assert_eq!(metrics::distance(&h, 0, 1), 1);  // same socket
/// assert_eq!(metrics::distance(&h, 0, 4), 2);  // same node, other socket
/// assert_eq!(metrics::distance(&h, 0, 8), 3);  // different node
/// assert_eq!(metrics::distance(&h, 5, 5), 0);
/// ```
pub fn distance(h: &Hierarchy, a: usize, b: usize) -> usize {
    match first_diff_level(h, a, b) {
        Some(j) => h.depth() - j,
        None => 0,
    }
}

/// The outermost level index at which the coordinates of `a` and `b`
/// differ, or `None` if `a == b`. Level `0` means the pair spans the
/// outermost level (e.g. different compute nodes).
pub fn first_diff_level(h: &Hierarchy, a: usize, b: usize) -> Option<usize> {
    if a == b {
        return None;
    }
    let strides = h.strides();
    strides.iter().position(|&s| a / s != b / s)
}

/// Ring cost of a communicator (§3.3): the sum of [`distance`] over
/// consecutive rank pairs `(p₀,p₁), (p₁,p₂), …, (p₍ₘ₋₂₎,p₍ₘ₋₁₎)`.
///
/// The paper's worked example: on `⟦2,2,4⟧` with 4-process communicators,
/// order `[0,1,2]` gives ring cost 9 and `[1,0,2]` gives 7.
pub fn ring_cost(h: &Hierarchy, members: &[usize]) -> usize {
    members
        .windows(2)
        .map(|pair| distance(h, pair[0], pair[1]))
        .sum()
}

/// Raw pair counts per level: entry `d` counts pairs at distance `d+1`
/// (entry 0 = inside the lowest level, entry `k−1` = crossing the
/// outermost level). The sum of all entries is `C(m,2)`.
///
/// Runs in `O(m·k + m log m)` by prefix-group counting instead of the
/// `O(m²·k)` pairwise scan: two members are within level `j` exactly when
/// their core ids agree after division by `strides[j]`, so after sorting
/// once, the pairs agreeing on a level prefix are runs of equal quotients,
/// and the pairs *first* differing at level `j` are the difference between
/// adjacent prefix counts. The original pairwise scan is kept as
/// [`pair_counts_per_level_naive`] and the two are cross-checked by
/// property tests.
pub fn pair_counts_per_level(h: &Hierarchy, members: &[usize]) -> Vec<usize> {
    let k = h.depth();
    let mut counts = vec![0usize; k];
    let m = members.len();
    if m < 2 {
        return counts;
    }
    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    // `prev` = pairs agreeing on the level prefix 0..j (all C(m,2) pairs
    // for the empty prefix). Division by a stride is monotone, so equal
    // quotients form contiguous runs of the sorted list.
    let mut prev = m * (m - 1) / 2;
    for (j, &stride) in h.strides().iter().enumerate() {
        let mut same = 0usize;
        let mut run = 1usize;
        for pair in sorted.windows(2) {
            if pair[0] / stride == pair[1] / stride {
                run += 1;
            } else {
                same += run * (run - 1) / 2;
                run = 1;
            }
        }
        same += run * (run - 1) / 2;
        // Pairs first differing at level j sit at distance k − j.
        counts[k - 1 - j] = prev - same;
        prev = same;
    }
    // The innermost stride is 1: only duplicate members can still agree.
    debug_assert_eq!(prev, 0, "communicator members must be distinct");
    counts
}

/// The original `O(m²·k)` pairwise implementation of
/// [`pair_counts_per_level`], kept as a correctness oracle for property
/// tests and as the baseline in the `order_search` benchmark.
pub fn pair_counts_per_level_naive(h: &Hierarchy, members: &[usize]) -> Vec<usize> {
    let k = h.depth();
    let mut counts = vec![0usize; k];
    for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            let d = distance(h, a, b);
            debug_assert!(d >= 1, "communicator members must be distinct");
            counts[d - 1] += 1;
        }
    }
    counts
}

/// Percentages of process pairs per level (§3.3): [`pair_counts_per_level`]
/// normalized to percent. Entries sum to 100 (up to rounding).
pub fn pairs_per_level(h: &Hierarchy, members: &[usize]) -> Vec<f64> {
    let counts = pair_counts_per_level(h, members);
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts
        .iter()
        .map(|&c| 100.0 * c as f64 / total as f64)
        .collect()
}

/// The characterization of one order printed in the paper's figure legends:
/// ring cost and pairs-per-level percentages of the *first* subcommunicator.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderCharacterization {
    /// The order characterized.
    pub order: Permutation,
    /// Ring cost of communicator 0.
    pub ring_cost: usize,
    /// Pairs-per-level percentages of communicator 0 (entry 0 = lowest
    /// level).
    pub percentages: Vec<f64>,
}

impl OrderCharacterization {
    /// Formats like the paper's legends: `"1-3-0-2 (45 - 46.7, 0.0, 53.3, 0.0)"`.
    pub fn legend(&self) -> String {
        let pct = self
            .percentages
            .iter()
            .map(|p| format!("{p:.1}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{} ({} - {})", self.order, self.ring_cost, pct)
    }
}

/// Characterizes communicator 0 under `sigma` with subcommunicators of
/// `subcomm_size` (quotient coloring, as in the paper's legends).
pub fn characterize_order(
    h: &Hierarchy,
    sigma: &Permutation,
    subcomm_size: usize,
) -> Result<OrderCharacterization, Error> {
    let layout = subcommunicators(h, sigma, subcomm_size, ColorScheme::Quotient)?;
    Ok(characterize_layout(h, sigma, &layout))
}

/// Characterization of communicator 0 of an already-built layout — lets
/// callers that also need the layout (or its [`mapping_signature`])
/// construct it once instead of once per metric.
pub fn characterize_layout(
    h: &Hierarchy,
    sigma: &Permutation,
    layout: &SubcommLayout,
) -> OrderCharacterization {
    let members = layout.members(0);
    OrderCharacterization {
        order: sigma.clone(),
        ring_cost: ring_cost(h, members),
        percentages: pairs_per_level(h, members),
    }
}

/// A canonical signature of the *resource mapping* of a layout: for every
/// communicator, the sorted set of cores it occupies; communicators sorted.
/// Orders with equal signatures map communicators to the same resources
/// (possibly exchanging which communicator sits where) — the paper calls
/// such orders *similar* (§3.3: `[2,0,1]` vs `[2,1,0]`).
///
/// Note this is deliberately insensitive to rank order *inside*
/// communicators; the ring cost distinguishes those.
pub fn mapping_signature(layout: &SubcommLayout) -> Vec<Vec<usize>> {
    let mut sig: Vec<Vec<usize>> = layout
        .comms()
        .iter()
        .map(|members| {
            let mut sorted = members.clone();
            sorted.sort_unstable();
            sorted
        })
        .collect();
    sig.sort();
    sig
}

/// Groups all `k!` orders into equivalence classes of identical
/// [`mapping_signature`]s. Evaluating one representative per class avoids
/// redundant measurements (§3.3).
///
/// Layouts of the `k!` orders are built on the [`crate::par`] worker pool;
/// the grouping itself is deterministic (orders are generated and grouped
/// in lexicographic order regardless of thread count).
pub fn equivalence_classes(
    h: &Hierarchy,
    subcomm_size: usize,
) -> Result<Vec<Vec<Permutation>>, Error> {
    let orders = Permutation::all(h.depth());
    let signatures = crate::par::map(&orders, |_, sigma| {
        subcommunicators(h, sigma, subcomm_size, ColorScheme::Quotient)
            .map(|layout| mapping_signature(&layout))
    });
    let mut classes: BTreeMap<Vec<Vec<usize>>, Vec<Permutation>> = BTreeMap::new();
    for (sigma, signature) in orders.into_iter().zip(signatures) {
        classes.entry(signature?).or_default().push(sigma);
    }
    Ok(classes.into_values().collect())
}

/// [`equivalence_classes`] with every member already characterized: each
/// of the `k!` orders has its layout built, signature taken and
/// communicator 0 characterized exactly once, in parallel. Classes are
/// ordered by signature; members keep lexicographic order.
pub fn characterized_classes(
    h: &Hierarchy,
    subcomm_size: usize,
) -> Result<Vec<Vec<OrderCharacterization>>, Error> {
    let orders = Permutation::all(h.depth());
    let classified = crate::par::map(&orders, |_, sigma| {
        subcommunicators(h, sigma, subcomm_size, ColorScheme::Quotient).map(|layout| {
            (
                mapping_signature(&layout),
                characterize_layout(h, sigma, &layout),
            )
        })
    });
    let mut classes: BTreeMap<Vec<Vec<usize>>, Vec<OrderCharacterization>> = BTreeMap::new();
    for result in classified {
        let (signature, characterization) = result?;
        classes.entry(signature).or_default().push(characterization);
    }
    Ok(classes.into_values().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(levels: &[usize]) -> Hierarchy {
        Hierarchy::new(levels.to_vec()).unwrap()
    }

    fn sig(order: &[usize]) -> Permutation {
        Permutation::new(order.to_vec()).unwrap()
    }

    /// Asserts a characterization against the paper's legend values
    /// (ring cost exact, percentages to the legend's 1-decimal rounding).
    fn assert_legend(
        hierarchy: &Hierarchy,
        order: &[usize],
        subcomm_size: usize,
        ring: usize,
        pct: &[f64],
    ) {
        let c = characterize_order(hierarchy, &sig(order), subcomm_size).unwrap();
        assert_eq!(c.ring_cost, ring, "ring cost of {:?}", order);
        assert_eq!(c.percentages.len(), pct.len());
        for (i, (&got, &want)) in c.percentages.iter().zip(pct).enumerate() {
            assert!(
                (got - want).abs() < 0.05,
                "order {order:?} level {i}: got {got:.3}, legend says {want}"
            );
        }
    }

    #[test]
    fn distance_levels_on_224() {
        let h = h(&[2, 2, 4]);
        assert_eq!(distance(&h, 0, 0), 0);
        assert_eq!(distance(&h, 0, 3), 1);
        assert_eq!(distance(&h, 0, 4), 2);
        assert_eq!(distance(&h, 3, 4), 2);
        assert_eq!(distance(&h, 7, 8), 3);
        assert_eq!(distance(&h, 0, 15), 3);
    }

    #[test]
    fn distance_is_symmetric() {
        let h = h(&[3, 2, 4]);
        for a in 0..h.size() {
            for b in 0..h.size() {
                assert_eq!(distance(&h, a, b), distance(&h, b, a));
            }
        }
    }

    #[test]
    fn first_diff_level_examples() {
        let h = h(&[2, 2, 4]);
        assert_eq!(first_diff_level(&h, 0, 8), Some(0));
        assert_eq!(first_diff_level(&h, 0, 4), Some(1));
        assert_eq!(first_diff_level(&h, 0, 1), Some(2));
        assert_eq!(first_diff_level(&h, 9, 9), None);
    }

    #[test]
    fn paper_worked_example_ring_costs() {
        // §3.3: on ⟦2,2,4⟧ with 4-process communicators, order [0,1,2] has
        // ring cost 9 and [1,0,2] has ring cost 7.
        let h224 = h(&[2, 2, 4]);
        assert_eq!(
            characterize_order(&h224, &sig(&[0, 1, 2]), 4)
                .unwrap()
                .ring_cost,
            9
        );
        assert_eq!(
            characterize_order(&h224, &sig(&[1, 0, 2]), 4)
                .unwrap()
                .ring_cost,
            7
        );
    }

    #[test]
    fn paper_worked_example_percentages() {
        // §3.3: order [2,1,0] → [100, 0, 0]; order [1,0,2] → [0, 33.3, 66.7].
        let h224 = h(&[2, 2, 4]);
        assert_legend(&h224, &[2, 1, 0], 4, 3, &[100.0, 0.0, 0.0]);
        let c = characterize_order(&h224, &sig(&[1, 0, 2]), 4).unwrap();
        assert!((c.percentages[0] - 0.0).abs() < 0.05);
        assert!((c.percentages[1] - 33.3).abs() < 0.05);
        assert!((c.percentages[2] - 66.7).abs() < 0.05);
    }

    #[test]
    fn figure3_legend_values() {
        // 16 Hydra nodes ⟦16,2,2,8⟧, 16 processes per communicator.
        let hydra = h(&[16, 2, 2, 8]);
        assert_legend(&hydra, &[0, 1, 2, 3], 16, 60, &[0.0, 0.0, 0.0, 100.0]);
        assert_legend(&hydra, &[2, 1, 0, 3], 16, 40, &[0.0, 6.7, 13.3, 80.0]);
        assert_legend(&hydra, &[1, 3, 0, 2], 16, 45, &[46.7, 0.0, 53.3, 0.0]);
        assert_legend(&hydra, &[1, 3, 2, 0], 16, 45, &[46.7, 0.0, 53.3, 0.0]);
        assert_legend(&hydra, &[3, 1, 0, 2], 16, 17, &[46.7, 0.0, 53.3, 0.0]);
        assert_legend(&hydra, &[3, 2, 1, 0], 16, 16, &[46.7, 53.3, 0.0, 0.0]);
    }

    #[test]
    fn figure4_legend_values() {
        // Same machine, 128 processes per communicator.
        let hydra = h(&[16, 2, 2, 8]);
        assert_legend(&hydra, &[0, 1, 2, 3], 128, 508, &[0.8, 1.6, 3.1, 94.5]);
        assert_legend(&hydra, &[2, 1, 0, 3], 128, 348, &[0.8, 1.6, 3.1, 94.5]);
        assert_legend(&hydra, &[1, 3, 0, 2], 128, 388, &[5.5, 0.0, 6.3, 88.2]);
        assert_legend(&hydra, &[3, 1, 0, 2], 128, 164, &[5.5, 0.0, 6.3, 88.2]);
        assert_legend(&hydra, &[1, 3, 2, 0], 128, 384, &[5.5, 6.3, 12.6, 75.6]);
        assert_legend(&hydra, &[3, 2, 1, 0], 128, 152, &[5.5, 6.3, 12.6, 75.6]);
    }

    #[test]
    fn figure5_legend_values() {
        // 16 LUMI nodes ⟦16,2,4,2,8⟧, 16 processes per communicator.
        let lumi = h(&[16, 2, 4, 2, 8]);
        assert_legend(
            &lumi,
            &[0, 1, 2, 3, 4],
            16,
            75,
            &[0.0, 0.0, 0.0, 0.0, 100.0],
        );
        assert_legend(
            &lumi,
            &[1, 2, 3, 0, 4],
            16,
            60,
            &[0.0, 6.7, 40.0, 53.3, 0.0],
        );
        assert_legend(
            &lumi,
            &[3, 2, 1, 4, 0],
            16,
            38,
            &[0.0, 6.7, 40.0, 53.3, 0.0],
        );
        assert_legend(
            &lumi,
            &[3, 4, 0, 1, 2],
            16,
            30,
            &[46.7, 53.3, 0.0, 0.0, 0.0],
        );
        assert_legend(
            &lumi,
            &[4, 3, 2, 1, 0],
            16,
            16,
            &[46.7, 53.3, 0.0, 0.0, 0.0],
        );
    }

    #[test]
    fn figure6_legend_values() {
        // Hydra, 64 processes per communicator (Allreduce figure).
        let hydra = h(&[16, 2, 2, 8]);
        assert_legend(&hydra, &[0, 1, 2, 3], 64, 252, &[0.0, 1.6, 3.2, 95.2]);
        assert_legend(&hydra, &[2, 1, 0, 3], 64, 172, &[0.0, 1.6, 3.2, 95.2]);
        assert_legend(&hydra, &[1, 3, 0, 2], 64, 192, &[11.1, 0.0, 12.7, 76.2]);
        assert_legend(&hydra, &[3, 1, 0, 2], 64, 80, &[11.1, 0.0, 12.7, 76.2]);
        assert_legend(&hydra, &[1, 3, 2, 0], 64, 190, &[11.1, 12.7, 25.4, 50.8]);
        assert_legend(&hydra, &[3, 2, 1, 0], 64, 74, &[11.1, 12.7, 25.4, 50.8]);
    }

    #[test]
    fn figure7_legend_values() {
        // LUMI, 256 processes per communicator (Allgather figure).
        let lumi = h(&[16, 2, 4, 2, 8]);
        assert_legend(
            &lumi,
            &[0, 1, 2, 3, 4],
            256,
            1275,
            &[0.0, 0.4, 2.4, 3.1, 94.1],
        );
        assert_legend(
            &lumi,
            &[1, 2, 3, 0, 4],
            256,
            1035,
            &[0.0, 0.4, 2.4, 3.1, 94.1],
        );
        assert_legend(
            &lumi,
            &[3, 4, 0, 1, 2],
            256,
            555,
            &[2.7, 3.1, 0.0, 0.0, 94.1],
        );
        assert_legend(
            &lumi,
            &[3, 2, 1, 4, 0],
            256,
            669,
            &[2.7, 3.1, 18.8, 25.1, 50.2],
        );
        assert_legend(
            &lumi,
            &[4, 3, 2, 1, 0],
            256,
            305,
            &[2.7, 3.1, 18.8, 25.1, 50.2],
        );
    }

    #[test]
    fn percentages_sum_to_100() {
        let hydra = h(&[16, 2, 2, 8]);
        for sigma in Permutation::all(4) {
            let c = characterize_order(&hydra, &sigma, 16).unwrap();
            let sum: f64 = c.percentages.iter().sum();
            assert!((sum - 100.0).abs() < 1e-9, "order {sigma}: sum {sum}");
        }
    }

    #[test]
    fn pair_counts_total_is_choose_2() {
        let hydra = h(&[16, 2, 2, 8]);
        let layout =
            subcommunicators(&hydra, &sig(&[0, 1, 2, 3]), 64, ColorScheme::Quotient).unwrap();
        let counts = pair_counts_per_level(&hydra, layout.members(0));
        assert_eq!(counts.iter().sum::<usize>(), 64 * 63 / 2);
    }

    #[test]
    fn ring_cost_bounds() {
        // m−1 ≤ ring cost ≤ (m−1)·k for an m-member communicator.
        let lumi = h(&[4, 2, 4, 2, 8]);
        let k = lumi.depth();
        for sigma in Permutation::all(k).into_iter().step_by(7) {
            let c = characterize_order(&lumi, &sigma, 16).unwrap();
            assert!(c.ring_cost >= 15);
            assert!(c.ring_cost <= 15 * k);
        }
    }

    #[test]
    fn legend_format_matches_paper_style() {
        let hydra = h(&[16, 2, 2, 8]);
        let c = characterize_order(&hydra, &sig(&[1, 3, 0, 2]), 16).unwrap();
        assert_eq!(c.legend(), "1-3-0-2 (45 - 46.7, 0.0, 53.3, 0.0)");
    }

    #[test]
    fn similar_orders_share_mapping_signature() {
        // §3.3: on ⟦2,2,4⟧ with 4-member comms, orders [2,0,1] and [2,1,0]
        // map communicators onto the same resource sets.
        let h224 = h(&[2, 2, 4]);
        let a = subcommunicators(&h224, &sig(&[2, 0, 1]), 4, ColorScheme::Quotient).unwrap();
        let b = subcommunicators(&h224, &sig(&[2, 1, 0]), 4, ColorScheme::Quotient).unwrap();
        assert_eq!(mapping_signature(&a), mapping_signature(&b));
        // …while [0,1,2] and [2,1,0] do not.
        let c = subcommunicators(&h224, &sig(&[0, 1, 2]), 4, ColorScheme::Quotient).unwrap();
        assert_ne!(mapping_signature(&a), mapping_signature(&c));
    }

    #[test]
    fn equivalence_classes_partition_all_orders() {
        let h224 = h(&[2, 2, 4]);
        let classes = equivalence_classes(&h224, 4).unwrap();
        let total: usize = classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, 6);
        // [0,1,2]/[1,0,2] share resources (one core per socket across the
        // machine) and [2,0,1]/[2,1,0] share (whole sockets); [0,2,1] and
        // [1,2,0] each stand alone.
        assert_eq!(classes.len(), 4);
        let mut sizes: Vec<usize> = classes.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2, 2]);
    }

    #[test]
    fn fast_pair_counts_match_naive_oracle() {
        // Cross-check the O(m·k) prefix-group counting against the O(m²)
        // oracle on every figure configuration.
        for (levels, sizes) in [
            (vec![2usize, 2, 4], vec![2usize, 4, 8]),
            (vec![16, 2, 2, 8], vec![16, 64, 128]),
            (vec![16, 2, 4, 2, 8], vec![16, 256]),
        ] {
            let hier = h(&levels);
            for &s in &sizes {
                for sigma in Permutation::all(hier.depth()).into_iter().step_by(3) {
                    let layout = subcommunicators(&hier, &sigma, s, ColorScheme::Quotient).unwrap();
                    let members = layout.members(0);
                    assert_eq!(
                        pair_counts_per_level(&hier, members),
                        pair_counts_per_level_naive(&hier, members),
                        "levels {levels:?} subcomm {s} order {sigma}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_pair_counts_handle_unsorted_members() {
        // Modulo coloring yields non-contiguous, unsorted member lists.
        let hydra = h(&[16, 2, 2, 8]);
        let layout =
            subcommunicators(&hydra, &sig(&[1, 3, 0, 2]), 32, ColorScheme::Modulo).unwrap();
        for c in 0..layout.count() {
            let members = layout.members(c);
            assert_eq!(
                pair_counts_per_level(&hydra, members),
                pair_counts_per_level_naive(&hydra, members)
            );
        }
    }

    #[test]
    fn characterized_classes_match_equivalence_classes() {
        let hydra = h(&[16, 2, 2, 8]);
        for s in [16usize, 64] {
            let plain = equivalence_classes(&hydra, s).unwrap();
            let characterized = characterized_classes(&hydra, s).unwrap();
            assert_eq!(plain.len(), characterized.len());
            for (p, c) in plain.iter().zip(&characterized) {
                let orders: Vec<&Permutation> = c.iter().map(|oc| &oc.order).collect();
                assert_eq!(p.iter().collect::<Vec<_>>(), orders);
                for oc in c {
                    assert_eq!(oc, &characterize_order(&hydra, &oc.order, s).unwrap());
                }
            }
        }
    }

    #[test]
    fn characterize_layout_agrees_with_characterize_order() {
        let h224 = h(&[2, 2, 4]);
        let sigma = sig(&[1, 0, 2]);
        let layout = subcommunicators(&h224, &sigma, 4, ColorScheme::Quotient).unwrap();
        assert_eq!(
            characterize_layout(&h224, &sigma, &layout),
            characterize_order(&h224, &sigma, 4).unwrap()
        );
    }

    #[test]
    fn ring_cost_distinguishes_orders_with_same_pairs() {
        // §3.3: the two metrics are independent — [1,3,0,2] and [3,1,0,2]
        // have identical percentages but different ring costs.
        let hydra = h(&[16, 2, 2, 8]);
        let a = characterize_order(&hydra, &sig(&[1, 3, 0, 2]), 16).unwrap();
        let b = characterize_order(&hydra, &sig(&[3, 1, 0, 2]), 16).unwrap();
        assert_eq!(a.percentages, b.percentages);
        assert_ne!(a.ring_cost, b.ring_cost);
    }

    #[test]
    fn empty_and_singleton_communicators() {
        let h224 = h(&[2, 2, 4]);
        assert_eq!(ring_cost(&h224, &[]), 0);
        assert_eq!(ring_cost(&h224, &[5]), 0);
        assert_eq!(pairs_per_level(&h224, &[5]), vec![0.0, 0.0, 0.0]);
    }
}
