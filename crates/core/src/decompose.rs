//! Mixed-radix decomposition and recomposition — Algorithms 1 and 2 of the
//! paper (Equations 1 and 2).
//!
//! * [`coordinates`] implements **Algorithm 1**: given the hierarchy `h` and
//!   a rank `r` in the sequential numbering, produce the coordinate vector
//!   `c` (outermost level first), i.e. the position of the core in the
//!   multi-dimensional space spanned by the hierarchy levels.
//! * [`compose`] implements **Algorithm 2 / Equation 2**: given coordinates
//!   and an order σ, produce the new rank where level σ(0) varies fastest.
//! * [`reorder_rank`] chains both, and [`RankReordering`] materializes the
//!   whole-world bijection (forward and inverse) for a given order.

use crate::error::Error;
use crate::hierarchy::Hierarchy;
use crate::permutation::Permutation;

/// Algorithm 1: decomposes `rank` into per-level coordinates, outermost
/// level first.
///
/// The initial numbering is assumed *sequential*: all cores of a component
/// are enumerated before moving to the next component of the same level
/// (Fig. 1 of the paper). If that assumption is violated the resulting
/// coordinates do not correspond to hardware positions and the reordering
/// pipeline built on top is meaningless (the paper makes the same caveat).
///
/// ```
/// use mre_core::{Hierarchy, decompose};
/// let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
/// assert_eq!(decompose::coordinates(&h, 10).unwrap(), vec![1, 0, 2]);
/// ```
pub fn coordinates(h: &Hierarchy, rank: usize) -> Result<Vec<usize>, Error> {
    if rank >= h.size() {
        return Err(Error::RankOutOfRange {
            rank,
            size: h.size(),
        });
    }
    let k = h.depth();
    let mut c = vec![0usize; k];
    let mut r = rank;
    for i in (0..k).rev() {
        c[i] = r % h.level(i);
        r /= h.level(i);
    }
    Ok(c)
}

/// Recomposes a coordinate vector into the sequential rank (the inverse of
/// [`coordinates`], i.e. Algorithm 2 with the reversal order).
pub fn rank_from_coordinates(h: &Hierarchy, c: &[usize]) -> Result<usize, Error> {
    validate_coordinates(h, c)?;
    let mut r = 0usize;
    for (i, &ci) in c.iter().enumerate() {
        r = r * h.level(i) + ci;
    }
    Ok(r)
}

/// Algorithm 2 / Equation 2: computes the reordered rank from coordinates
/// `c` and order `sigma`; level `sigma[0]` varies fastest in the new
/// numbering.
///
/// ```
/// use mre_core::{Hierarchy, Permutation, decompose};
/// let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
/// let c = decompose::coordinates(&h, 10).unwrap();
/// let sigma = Permutation::new(vec![0, 2, 1]).unwrap();
/// assert_eq!(decompose::compose(&h, &c, &sigma).unwrap(), 5); // Table 1
/// ```
pub fn compose(h: &Hierarchy, c: &[usize], sigma: &Permutation) -> Result<usize, Error> {
    validate_coordinates(h, c)?;
    if sigma.len() != h.depth() {
        return Err(Error::PermutationDepthMismatch {
            hierarchy: h.depth(),
            permutation: sigma.len(),
        });
    }
    let mut r = 0usize;
    let mut f = 1usize;
    for i in 0..h.depth() {
        let level = sigma.apply(i);
        r += c[level] * f;
        f *= h.level(level);
    }
    Ok(r)
}

/// Applies Algorithm 1 followed by Algorithm 2: the reordered rank of
/// `rank` under order `sigma`.
pub fn reorder_rank(h: &Hierarchy, rank: usize, sigma: &Permutation) -> Result<usize, Error> {
    let c = coordinates(h, rank)?;
    compose(h, &c, sigma)
}

fn validate_coordinates(h: &Hierarchy, c: &[usize]) -> Result<(), Error> {
    if c.len() != h.depth() {
        return Err(Error::CoordinateDepthMismatch {
            expected: h.depth(),
            got: c.len(),
        });
    }
    for (level, (&coordinate, &radix)) in c.iter().zip(h.levels()).enumerate() {
        if coordinate >= radix {
            return Err(Error::CoordinateOutOfRange {
                level,
                coordinate,
                radix,
            });
        }
    }
    Ok(())
}

/// The whole-world rank bijection induced by an order: for every sequential
/// rank the reordered rank, and the inverse.
///
/// * `new_rank(old)` — the rank the process on core `old` receives in the
///   reordered communicator (Alg. 1 + Alg. 2).
/// * `old_rank(new)` — which core (sequential id) holds reordered rank
///   `new`; this is the *enumeration sequence* of the cores: walking
///   `new = 0, 1, 2, …` visits the cores in the order's enumeration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankReordering {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl RankReordering {
    /// Builds the bijection for `hierarchy` under `sigma`.
    pub fn new(hierarchy: &Hierarchy, sigma: &Permutation) -> Result<Self, Error> {
        if sigma.len() != hierarchy.depth() {
            return Err(Error::PermutationDepthMismatch {
                hierarchy: hierarchy.depth(),
                permutation: sigma.len(),
            });
        }
        let size = hierarchy.size();
        let mut forward = vec![0usize; size];
        let mut inverse = vec![0usize; size];
        // Incremental mixed-radix walk: iterate sequential ranks and update
        // coordinates with carries instead of redoing the full division
        // chain for every rank.
        let k = hierarchy.depth();
        let mut c = vec![0usize; k];
        // Precompute the factor of each level position in the new numbering.
        let mut factors = vec![0usize; k]; // factors[level] = weight of c[level]
        {
            let mut f = 1usize;
            for i in 0..k {
                let level = sigma.apply(i);
                factors[level] = f;
                f *= hierarchy.level(level);
            }
        }
        let mut new_rank = 0usize;
        #[allow(clippy::needless_range_loop)] // old_rank is the datum, not just an index
        for old_rank in 0..size {
            forward[old_rank] = new_rank;
            inverse[new_rank] = old_rank;
            // Increment the sequential coordinates (innermost varies
            // fastest) and keep `new_rank` in sync.
            let mut i = k;
            while i > 0 {
                i -= 1;
                c[i] += 1;
                new_rank += factors[i];
                if c[i] < hierarchy.level(i) {
                    break;
                }
                new_rank -= c[i] * factors[i];
                c[i] = 0;
            }
        }
        Ok(Self { forward, inverse })
    }

    /// Number of ranks in the bijection.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// The reordered rank of sequential rank `old`.
    pub fn new_rank(&self, old: usize) -> usize {
        self.forward[old]
    }

    /// The sequential rank (core) holding reordered rank `new`.
    pub fn old_rank(&self, new: usize) -> usize {
        self.inverse[new]
    }

    /// The full forward map (`old → new`).
    pub fn forward(&self) -> &[usize] {
        &self.forward
    }

    /// The full inverse map (`new → old`), i.e. the enumeration sequence of
    /// cores.
    pub fn inverse(&self) -> &[usize] {
        &self.inverse
    }

    /// Whether the reordering is the identity (order = reversal).
    pub fn is_identity(&self) -> bool {
        self.forward.iter().enumerate().all(|(i, &v)| i == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h224() -> Hierarchy {
        Hierarchy::new(vec![2, 2, 4]).unwrap()
    }

    #[test]
    fn figure1_rank10_coordinates() {
        // Rank 10 is on node 1, socket 0, core 2 (Fig. 1).
        assert_eq!(coordinates(&h224(), 10).unwrap(), vec![1, 0, 2]);
    }

    #[test]
    fn coordinates_rejects_out_of_range() {
        assert!(coordinates(&h224(), 16).is_err());
        assert!(coordinates(&h224(), 15).is_ok());
    }

    #[test]
    fn rank_from_coordinates_inverts_algorithm1() {
        let h = h224();
        for r in 0..h.size() {
            let c = coordinates(&h, r).unwrap();
            assert_eq!(rank_from_coordinates(&h, &c).unwrap(), r);
        }
    }

    #[test]
    fn rank_from_coordinates_validates() {
        let h = h224();
        assert!(rank_from_coordinates(&h, &[0, 0]).is_err());
        assert!(rank_from_coordinates(&h, &[0, 0, 4]).is_err());
        assert!(rank_from_coordinates(&h, &[2, 0, 0]).is_err());
    }

    #[test]
    fn table1_all_orders_of_rank_10() {
        // Table 1 of the paper: rank 10 (coordinates [1,0,2]) on [2,2,4].
        let h = h224();
        let cases = [
            (vec![0, 1, 2], 9),
            (vec![0, 2, 1], 5),
            (vec![1, 0, 2], 10),
            (vec![1, 2, 0], 12),
            (vec![2, 0, 1], 6),
            (vec![2, 1, 0], 10),
        ];
        for (order, expected) in cases {
            let sigma = Permutation::new(order.clone()).unwrap();
            assert_eq!(
                reorder_rank(&h, 10, &sigma).unwrap(),
                expected,
                "order {order:?}"
            );
        }
    }

    #[test]
    fn reversal_order_is_identity() {
        // The order [k-1,…,0] reproduces the original numbering (paper
        // §3.1, Fig. 2f).
        let h = h224();
        let sigma = Permutation::reversal(3);
        for r in 0..h.size() {
            assert_eq!(reorder_rank(&h, r, &sigma).unwrap(), r);
        }
    }

    #[test]
    fn reordering_is_a_bijection() {
        let h = Hierarchy::new(vec![3, 2, 4]).unwrap();
        for sigma in Permutation::all(3) {
            let mut seen = vec![false; h.size()];
            for r in 0..h.size() {
                let n = reorder_rank(&h, r, &sigma).unwrap();
                assert!(!seen[n], "duplicate image {n} under {sigma}");
                seen[n] = true;
            }
        }
    }

    #[test]
    fn rank_reordering_matches_pointwise_computation() {
        let h = Hierarchy::new(vec![4, 3, 2, 5]).unwrap();
        for sigma in Permutation::all(4) {
            let map = RankReordering::new(&h, &sigma).unwrap();
            for r in 0..h.size() {
                assert_eq!(map.new_rank(r), reorder_rank(&h, r, &sigma).unwrap());
                assert_eq!(map.old_rank(map.new_rank(r)), r);
            }
        }
    }

    #[test]
    fn rank_reordering_identity_detection() {
        let h = h224();
        let id = RankReordering::new(&h, &Permutation::reversal(3)).unwrap();
        assert!(id.is_identity());
        let not_id = RankReordering::new(&h, &Permutation::identity(3)).unwrap();
        assert!(!not_id.is_identity());
    }

    #[test]
    fn figure2_order_012_layout() {
        // Fig. 2a: order [0,1,2] on [2,2,4] yields, reading node 0 socket 0
        // cores 0..3, the reordered ranks 0,4,8,12.
        let h = h224();
        let map = RankReordering::new(&h, &Permutation::new(vec![0, 1, 2]).unwrap()).unwrap();
        assert_eq!(&map.forward()[0..4], &[0, 4, 8, 12]);
        // node 0 socket 1: 2,6,10,14 — node 1 socket 0: 1,5,9,13.
        assert_eq!(&map.forward()[4..8], &[2, 6, 10, 14]);
        assert_eq!(&map.forward()[8..12], &[1, 5, 9, 13]);
        assert_eq!(&map.forward()[12..16], &[3, 7, 11, 15]);
    }

    #[test]
    fn figure2_order_201_layout() {
        // Fig. 2e: order [2,0,1] = "plane=4": node 0 socket 0 cores get
        // 0,1,2,3; node 0 socket 1 gets 8,9,10,11; node 1 socket 0 gets
        // 4,5,6,7.
        let h = h224();
        let map = RankReordering::new(&h, &Permutation::new(vec![2, 0, 1]).unwrap()).unwrap();
        assert_eq!(&map.forward()[0..4], &[0, 1, 2, 3]);
        assert_eq!(&map.forward()[4..8], &[8, 9, 10, 11]);
        assert_eq!(&map.forward()[8..12], &[4, 5, 6, 7]);
        assert_eq!(&map.forward()[12..16], &[12, 13, 14, 15]);
    }

    #[test]
    fn depth_mismatch_is_rejected() {
        let h = h224();
        let sigma = Permutation::identity(4);
        assert!(reorder_rank(&h, 0, &sigma).is_err());
        assert!(RankReordering::new(&h, &sigma).is_err());
        assert!(compose(&h, &[0, 0, 0], &sigma).is_err());
    }
}
