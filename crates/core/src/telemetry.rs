//! A process-wide telemetry sink for low-frequency instrumentation.
//!
//! Crates below `mre-trace` in the dependency graph (this crate and
//! `mre-simnet`) cannot hold a `mre_trace::MetricsRegistry` directly, so
//! they publish through this indirection instead: a global [`Collector`]
//! that is `None` by default. Every emission site is guarded by one
//! relaxed atomic load — the same "single `Option` check" contract the
//! traced runtime makes — so uninstrumented runs pay nothing measurable.
//!
//! Emission is expected to be *coarse*: one call per contention solve, per
//! timeline reconstruction, per order-search pruning pass — never per
//! message or per heap operation. The collector itself may take a lock.
//!
//! `mre-trace` installs its metrics registry here via
//! [`install`]/[`uninstall`] (wrapped in a guard on its side). The sink is
//! process-global: concurrent tests sharing a binary can observe each
//! other's counts, so assertions on collected values should be lower
//! bounds, not equalities.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Receives telemetry emitted by the algorithm crates.
pub trait Collector: Send + Sync {
    /// Adds `value` to the monotonic counter `name`.
    fn counter_add(&self, name: &str, value: u64);
    /// Sets the gauge `name` to `value` (last write wins).
    fn gauge_set(&self, name: &str, value: f64);
    /// Records one observation of `value` into the histogram `name`.
    fn observe(&self, name: &str, value: f64);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Collector>>> = RwLock::new(None);

/// Installs `collector` as the process-wide sink (replacing any previous
/// one). Emission sites become active immediately.
pub fn install(collector: Arc<dyn Collector>) {
    *SINK.write().expect("telemetry sink poisoned") = Some(collector);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the installed sink; emission sites return to the single-load
/// fast path.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *SINK.write().expect("telemetry sink poisoned") = None;
}

/// Whether a collector is currently installed (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `value` to counter `name` if a collector is installed.
#[inline]
pub fn counter_add(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    if let Ok(sink) = SINK.read() {
        if let Some(c) = sink.as_ref() {
            c.counter_add(name, value);
        }
    }
}

/// Sets gauge `name` to `value` if a collector is installed.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    if let Ok(sink) = SINK.read() {
        if let Some(c) = sink.as_ref() {
            c.gauge_set(name, value);
        }
    }
}

/// Records one histogram observation of `value` under `name` if a
/// collector is installed.
#[inline]
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    if let Ok(sink) = SINK.read() {
        if let Some(c) = sink.as_ref() {
            c.observe(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Capture {
        counters: Mutex<Vec<(String, u64)>>,
    }

    impl Collector for Capture {
        fn counter_add(&self, name: &str, value: u64) {
            self.counters
                .lock()
                .unwrap()
                .push((name.to_string(), value));
        }
        fn gauge_set(&self, _name: &str, _value: f64) {}
        fn observe(&self, _name: &str, _value: f64) {}
    }

    #[test]
    fn disabled_sink_swallows_and_installed_sink_receives() {
        // Note: the sink is process-global; this test is the only one in
        // this crate installing it, and it restores the disabled state.
        counter_add("t.before", 1); // no sink: must not panic
        let cap = Arc::new(Capture {
            counters: Mutex::new(Vec::new()),
        });
        install(cap.clone());
        assert!(enabled());
        counter_add("t.counter", 3);
        counter_add("t.counter", 4);
        uninstall();
        assert!(!enabled());
        counter_add("t.after", 9);
        let got = cap.counters.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![("t.counter".to_string(), 3), ("t.counter".to_string(), 4)]
        );
    }
}
