//! Error type shared by all `mre-core` operations.

use std::fmt;

/// Errors produced by hierarchy construction, decomposition, and the
/// enumeration algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A hierarchy was constructed with no levels.
    EmptyHierarchy,
    /// A hierarchy level had size zero.
    ZeroLevel {
        /// Index of the offending level.
        level: usize,
    },
    /// The product of the hierarchy levels overflowed `usize`.
    HierarchyOverflow,
    /// A rank was outside `0..hierarchy.size()`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Total number of resources described by the hierarchy.
        size: usize,
    },
    /// A coordinate vector did not match the hierarchy depth.
    CoordinateDepthMismatch {
        /// Expected depth (hierarchy depth).
        expected: usize,
        /// Provided coordinate count.
        got: usize,
    },
    /// A coordinate exceeded its level's radix.
    CoordinateOutOfRange {
        /// Level index of the offending coordinate.
        level: usize,
        /// Offending coordinate value.
        coordinate: usize,
        /// Radix (size) of that level.
        radix: usize,
    },
    /// A permutation vector was not a bijection of `0..n`.
    InvalidPermutation {
        /// A description of why the vector is not a permutation.
        reason: &'static str,
    },
    /// A permutation's length did not match the hierarchy depth.
    PermutationDepthMismatch {
        /// Hierarchy depth.
        hierarchy: usize,
        /// Permutation length.
        permutation: usize,
    },
    /// A level split was requested with a factor that does not divide the
    /// level size.
    IndivisibleLevel {
        /// Level index.
        level: usize,
        /// Level size.
        size: usize,
        /// Requested factor.
        factor: usize,
    },
    /// A level index was out of range.
    LevelOutOfRange {
        /// The offending level index.
        level: usize,
        /// Hierarchy depth.
        depth: usize,
    },
    /// The subcommunicator size does not divide the world size.
    IndivisibleSubcomm {
        /// World size.
        world: usize,
        /// Requested subcommunicator size.
        subcomm: usize,
    },
    /// The requested number of cores exceeds what the hierarchy provides.
    TooManyCores {
        /// Requested core count.
        requested: usize,
        /// Available core count.
        available: usize,
    },
    /// A communication schedule contained a self-message (`src == dst`),
    /// which occupies no network link and silently distorts round costing.
    SelfMessage {
        /// Round index containing the offending message.
        round: usize,
        /// The core sending to itself.
        core: usize,
    },
    /// A communication schedule contained two messages with the same
    /// `(src, dst)` endpoints in one round; the contention solver would
    /// treat them as independent flows and mis-cost the round.
    DuplicateMessage {
        /// Round index containing the duplicate.
        round: usize,
        /// Sending core of the duplicated pair.
        src: usize,
        /// Receiving core of the duplicated pair.
        dst: usize,
    },
    /// A textual representation (hierarchy, permutation, rankfile) failed to
    /// parse.
    Parse {
        /// Human-readable description of the parse failure.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyHierarchy => write!(f, "hierarchy must have at least one level"),
            Error::ZeroLevel { level } => {
                write!(
                    f,
                    "hierarchy level {level} has size 0 (radixes must be >= 1)"
                )
            }
            Error::HierarchyOverflow => {
                write!(f, "product of hierarchy levels overflows usize")
            }
            Error::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for hierarchy of size {size}")
            }
            Error::CoordinateDepthMismatch { expected, got } => write!(
                f,
                "coordinate vector has {got} entries but hierarchy depth is {expected}"
            ),
            Error::CoordinateOutOfRange {
                level,
                coordinate,
                radix,
            } => write!(
                f,
                "coordinate {coordinate} at level {level} exceeds radix {radix}"
            ),
            Error::InvalidPermutation { reason } => {
                write!(f, "invalid permutation: {reason}")
            }
            Error::PermutationDepthMismatch {
                hierarchy,
                permutation,
            } => write!(
                f,
                "permutation of length {permutation} does not match hierarchy depth {hierarchy}"
            ),
            Error::IndivisibleLevel {
                level,
                size,
                factor,
            } => write!(
                f,
                "cannot split level {level} of size {size} by factor {factor}"
            ),
            Error::LevelOutOfRange { level, depth } => {
                write!(f, "level index {level} out of range for depth {depth}")
            }
            Error::IndivisibleSubcomm { world, subcomm } => write!(
                f,
                "subcommunicator size {subcomm} does not divide world size {world}"
            ),
            Error::TooManyCores {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} cores but the hierarchy only provides {available}"
            ),
            Error::SelfMessage { round, core } => write!(
                f,
                "round {round} contains a self-message on core {core} \
                 (src == dst); drop it or use Schedule::canonicalized()"
            ),
            Error::DuplicateMessage { round, src, dst } => write!(
                f,
                "round {round} contains duplicate messages {src} -> {dst}; \
                 merge them or use Schedule::canonicalized()"
            ),
            Error::Parse { message } => write!(f, "parse error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::RankOutOfRange { rank: 20, size: 16 };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("16"));

        let e = Error::IndivisibleLevel {
            level: 2,
            size: 16,
            factor: 3,
        };
        assert!(e.to_string().contains("level 2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::EmptyHierarchy);
    }
}
