//! # mre-core — mixed-radix enumeration of hierarchical compute resources
//!
//! This crate implements the technique of Swartvagher, Hunold, Träff and
//! Vardas, *"Using Mixed-Radix Decomposition to Enumerate Computational
//! Resources of Deeply Hierarchical Architectures"* (SC-W 2023): expressing
//! process-to-core mappings of deeply hierarchical machines (racks, nodes,
//! sockets, NUMA domains, caches, cores, …) by enumerating the cores in
//! different orders derived from a mixed-radix decomposition of linear ranks.
//!
//! The crate is pure algorithm — it has no dependency on MPI, hwloc or any
//! hardware. It provides:
//!
//! * [`Hierarchy`] — the radix vector `⟦h₀, …, h₍ₖ₋₁₎⟧` describing how many
//!   sub-components each hierarchy level contains (outermost first), with
//!   support for *fake levels* (splitting a level to expose more orders).
//! * [`Permutation`] — level orders σ, including generation of all `k!`
//!   orders via Heap's algorithm or in lexicographic order.
//! * [`decompose`] — Algorithms 1 and 2 of the paper: rank → coordinates and
//!   (coordinates, σ) → reordered rank, plus whole-world [`RankReordering`]
//!   maps.
//! * [`metrics`] — the two characterization metrics of §3.3: *ring cost* and
//!   *percentages of process pairs per level*, plus order equivalence
//!   classes.
//! * [`subcomm`] — grouping reordered ranks into equally-sized
//!   subcommunicators (quotient and modulo coloring).
//! * [`core_select`] — Algorithm 3: generating `--cpu-bind=map_cpu` core
//!   lists that extend Slurm's `--distribution` to every hierarchy level.
//! * [`rankfile`] — emitting and parsing rankfiles for transparent
//!   reordering.
//!
//! ## Quick example
//!
//! ```
//! use mre_core::{Hierarchy, Permutation, decompose};
//!
//! // Two nodes, two sockets per node, four cores per socket (Fig. 1).
//! let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
//! // Rank 10 sits on node 1, socket 0, core 2.
//! assert_eq!(decompose::coordinates(&h, 10).unwrap(), vec![1, 0, 2]);
//! // Enumerating nodes fastest ([0,1,2]) renumbers it to 9 (Table 1).
//! let sigma = Permutation::new(vec![0, 1, 2]).unwrap();
//! assert_eq!(decompose::reorder_rank(&h, 10, &sigma).unwrap(), 9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod core_select;
pub mod decompose;
pub mod error;
pub mod hierarchy;
pub mod metrics;
pub mod order_search;
pub mod par;
pub mod permutation;
pub mod rankfile;
pub mod subcomm;
pub mod telemetry;
pub mod visualize;

pub use core_select::{distinct_core_sets, map_cpu_list, selected_hierarchy};
pub use decompose::{compose, coordinates, rank_from_coordinates, reorder_rank, RankReordering};
pub use error::Error;
pub use hierarchy::Hierarchy;
pub use metrics::{pairs_per_level, ring_cost, OrderCharacterization};
pub use permutation::Permutation;
pub use subcomm::{segmented_layout, subcommunicators, subcommunicators_ragged, ColorScheme};
