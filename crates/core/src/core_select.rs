//! Core selection for jobs that do not use every core (§3.4, Algorithm 3).
//!
//! Slurm's `--distribution` can only change the policy at the node and
//! socket levels. By generating an explicit `--cpu-bind=map_cpu:<list>`
//! core list from a mixed-radix enumeration, any hierarchy level —
//! including fake levels — can participate in the placement policy.
//!
//! [`map_cpu_list`] is Algorithm 3 verbatim: it enumerates all cores of one
//! compute node, keeps those whose reordered rank falls below the requested
//! process count, and orders the list by reordered rank (so the list index
//! is the MPI rank on that node).
//!
//! [`selected_hierarchy`] derives the hierarchy formed by the *selected*
//! cores, which is the hierarchy to feed into the second, rank-reordering
//! step (the paper's example: selecting one full socket on each of two
//! Fig. 1 nodes yields `⟦2,4⟧`; selecting two cores per socket yields
//! `⟦2,2,2⟧`).

use crate::decompose::reorder_rank;
use crate::error::Error;
use crate::hierarchy::Hierarchy;
use crate::permutation::Permutation;
use std::collections::BTreeMap;

/// A distinct selected core set (sorted) together with every order that
/// selects it — one bar-color group of the paper's Fig. 9.
pub type CoreSetGroup = (Vec<usize>, Vec<Permutation>);

/// Algorithm 3: the `--cpu-bind=map_cpu` list for one compute node.
///
/// `node_h` is the hierarchy of a single compute node, `sigma` the
/// enumeration order, `n` the number of cores to use on the node. Returns
/// `l` with `l[r] = c`: the process with node-local rank `r` binds to
/// physical core `c`.
///
/// ```
/// use mre_core::{Hierarchy, Permutation, core_select::map_cpu_list};
/// // A node with 2 sockets × 4 cores; use 4 cores, enumerating sockets
/// // fastest: cores 0,4 then 1,5.
/// let node = Hierarchy::new(vec![2, 4]).unwrap();
/// let sigma = Permutation::new(vec![0, 1]).unwrap();
/// assert_eq!(map_cpu_list(&node, &sigma, 4).unwrap(), vec![0, 4, 1, 5]);
/// ```
pub fn map_cpu_list(
    node_h: &Hierarchy,
    sigma: &Permutation,
    n: usize,
) -> Result<Vec<usize>, Error> {
    let total = node_h.size();
    if n == 0 || n > total {
        return Err(Error::TooManyCores {
            requested: n,
            available: total,
        });
    }
    if sigma.len() != node_h.depth() {
        return Err(Error::PermutationDepthMismatch {
            hierarchy: node_h.depth(),
            permutation: sigma.len(),
        });
    }
    let mut list = vec![usize::MAX; n];
    for c in 0..total {
        let r = reorder_rank(node_h, c, sigma)?;
        if r < n {
            list[r] = c;
        }
    }
    debug_assert!(list.iter().all(|&c| c != usize::MAX));
    Ok(list)
}

/// Formats a core list as the Slurm option value
/// `map_cpu:0,4,1,5`.
pub fn format_map_cpu(list: &[usize]) -> String {
    let ids = list
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!("map_cpu:{ids}")
}

/// Derives the hierarchy formed by the first `n` cores of the enumeration
/// (the cores [`map_cpu_list`] selects) — the hierarchy for the second,
/// rank-reordering step of §3.4.
///
/// This exists only when the selection is *regular*: `n` must factor as
/// `h[σ(0)] · h[σ(1)] · … · h[σ(t−1)] · q` with `q` dividing into
/// `h[σ(t)]`. Levels that are only partially used contribute their used
/// count; levels fixed at coordinate 0 are dropped. The returned levels are
/// in the *original* hierarchy order (outermost first).
///
/// ```
/// use mre_core::{Hierarchy, Permutation, core_select::selected_hierarchy};
/// let node = Hierarchy::new(vec![2, 4]).unwrap(); // sockets × cores
/// // Enumerate cores fastest: first 4 cores = socket 0 → hierarchy ⟦4⟧.
/// let fill = Permutation::new(vec![1, 0]).unwrap();
/// assert_eq!(selected_hierarchy(&node, &fill, 4).unwrap().levels(), &[4]);
/// // Enumerate sockets fastest: 2 cores on each socket → ⟦2,2⟧.
/// let spread = Permutation::new(vec![0, 1]).unwrap();
/// assert_eq!(selected_hierarchy(&node, &spread, 4).unwrap().levels(), &[2, 2]);
/// ```
pub fn selected_hierarchy(
    node_h: &Hierarchy,
    sigma: &Permutation,
    n: usize,
) -> Result<Hierarchy, Error> {
    let total = node_h.size();
    if n == 0 || n > total {
        return Err(Error::TooManyCores {
            requested: n,
            available: total,
        });
    }
    if sigma.len() != node_h.depth() {
        return Err(Error::PermutationDepthMismatch {
            hierarchy: node_h.depth(),
            permutation: sigma.len(),
        });
    }
    // used[level] = how many coordinate values of that level the first n
    // enumeration points cover.
    let mut used = vec![1usize; node_h.depth()];
    let mut remaining = n;
    for i in 0..sigma.len() {
        let level = sigma.apply(i);
        let radix = node_h.level(level);
        if remaining >= radix {
            if !remaining.is_multiple_of(radix) {
                return Err(Error::IndivisibleLevel {
                    level,
                    size: radix,
                    factor: remaining,
                });
            }
            used[level] = radix;
            remaining /= radix;
        } else {
            if remaining > 1 {
                used[level] = remaining;
                remaining = 1;
            }
            // Remaining levels stay fixed at coordinate 0.
        }
    }
    if remaining != 1 {
        return Err(Error::TooManyCores {
            requested: n,
            available: total,
        });
    }
    let mut levels = Vec::new();
    let mut names = Vec::new();
    for (i, &u) in used.iter().enumerate() {
        if u > 1 {
            levels.push(u);
            names.push(node_h.name(i).to_string());
        }
    }
    if levels.is_empty() {
        // n == 1: a degenerate single-resource hierarchy.
        levels.push(1);
        names.push(node_h.name(node_h.depth() - 1).to_string());
    }
    Hierarchy::with_names(levels, names)
}

/// Groups all `k!` orders by the *set* of cores they select (ignoring the
/// order within the set). Figure 9 colors bars by exactly this grouping:
/// orders in the same group use the same cores with different MPI rank
/// mappings.
///
/// Returns the groups keyed by the sorted selected core list, each group
/// listing its orders in lexicographic order.
pub fn distinct_core_sets(node_h: &Hierarchy, n: usize) -> Result<Vec<CoreSetGroup>, Error> {
    let mut groups: BTreeMap<Vec<usize>, Vec<Permutation>> = BTreeMap::new();
    for sigma in Permutation::all(node_h.depth()) {
        let mut set = map_cpu_list(node_h, &sigma, n)?;
        set.sort_unstable();
        groups.entry(set).or_default().push(sigma);
    }
    Ok(groups.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(order: &[usize]) -> Permutation {
        Permutation::new(order.to_vec()).unwrap()
    }

    #[test]
    fn algorithm3_full_node_is_reordering() {
        // Using every core, map_cpu degenerates to the inverse reordering.
        let node = Hierarchy::new(vec![2, 4]).unwrap();
        let sigma = sig(&[0, 1]);
        let list = map_cpu_list(&node, &sigma, 8).unwrap();
        assert_eq!(list, vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn algorithm3_partial_selection() {
        let node = Hierarchy::new(vec![2, 4]).unwrap();
        // Fill socket 0 first.
        assert_eq!(
            map_cpu_list(&node, &sig(&[1, 0]), 4).unwrap(),
            vec![0, 1, 2, 3]
        );
        // Alternate sockets.
        assert_eq!(
            map_cpu_list(&node, &sig(&[0, 1]), 4).unwrap(),
            vec![0, 4, 1, 5]
        );
        // Two processes.
        assert_eq!(map_cpu_list(&node, &sig(&[0, 1]), 2).unwrap(), vec![0, 4]);
        assert_eq!(map_cpu_list(&node, &sig(&[1, 0]), 2).unwrap(), vec![0, 1]);
    }

    #[test]
    fn lumi_node_figure9_core_ids() {
        // One LUMI node: ⟦2,4,2,8⟧ (socket, NUMA, L3, core), 128 cores.
        // Fig. 9, 2 processes: order [0,1,2,3] selects cores 0 and 64 (first
        // core of each socket); [1,0,2,3] selects 0 and 16 (first core of
        // each NUMA... of the first two NUMA domains); [2,0,1,3] → 0,8;
        // [3,0,1,2] → 0,1.
        let node = Hierarchy::new(vec![2, 4, 2, 8]).unwrap();
        assert_eq!(
            map_cpu_list(&node, &sig(&[0, 1, 2, 3]), 2).unwrap(),
            vec![0, 64]
        );
        assert_eq!(
            map_cpu_list(&node, &sig(&[1, 0, 2, 3]), 2).unwrap(),
            vec![0, 16]
        );
        assert_eq!(
            map_cpu_list(&node, &sig(&[2, 0, 1, 3]), 2).unwrap(),
            vec![0, 8]
        );
        assert_eq!(
            map_cpu_list(&node, &sig(&[3, 0, 1, 2]), 2).unwrap(),
            vec![0, 1]
        );
    }

    #[test]
    fn lumi_node_figure9_four_processes() {
        // Fig. 9, 4 processes: [0,1,2,3] → 0,64,16,80 (annotated
        // "0,16,64,80" as a set); [2,1,0,3] → one core per L3 cache of the
        // first two NUMA nodes: set {0,8,16,24}.
        let node = Hierarchy::new(vec![2, 4, 2, 8]).unwrap();
        let l = map_cpu_list(&node, &sig(&[0, 1, 2, 3]), 4).unwrap();
        let mut set = l.clone();
        set.sort_unstable();
        assert_eq!(set, vec![0, 16, 64, 80]);
        let mut set = map_cpu_list(&node, &sig(&[2, 1, 0, 3]), 4).unwrap();
        set.sort_unstable();
        assert_eq!(set, vec![0, 8, 16, 24]);
        // [3,0,1,2] packs: cores 0-3.
        assert_eq!(
            map_cpu_list(&node, &sig(&[3, 0, 1, 2]), 4).unwrap(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn map_cpu_rejects_bad_counts() {
        let node = Hierarchy::new(vec![2, 4]).unwrap();
        assert!(map_cpu_list(&node, &sig(&[0, 1]), 0).is_err());
        assert!(map_cpu_list(&node, &sig(&[0, 1]), 9).is_err());
    }

    #[test]
    fn format_matches_slurm_option() {
        assert_eq!(format_map_cpu(&[0, 4, 1, 5]), "map_cpu:0,4,1,5");
    }

    #[test]
    fn selected_hierarchy_paper_examples() {
        // §3.4: Fig. 1 nodes (⟦2,4⟧ per node). Selecting all cores of the
        // first socket ⇒ per-node hierarchy ⟦4⟧; two cores per socket ⇒
        // ⟦2,2⟧.
        let node = Hierarchy::new(vec![2, 4]).unwrap();
        assert_eq!(
            selected_hierarchy(&node, &sig(&[1, 0]), 4)
                .unwrap()
                .levels(),
            &[4]
        );
        assert_eq!(
            selected_hierarchy(&node, &sig(&[0, 1]), 4)
                .unwrap()
                .levels(),
            &[2, 2]
        );
    }

    #[test]
    fn selected_hierarchy_keeps_level_names() {
        let node = Hierarchy::with_names(
            vec![2, 4, 2, 8],
            vec!["socket".into(), "numa".into(), "l3".into(), "core".into()],
        )
        .unwrap();
        let h = selected_hierarchy(&node, &sig(&[2, 1, 0, 3]), 16).unwrap();
        // 16 = 2 (l3) × 4 (numa) × 2 (socket): one core per L3 everywhere.
        assert_eq!(h.levels(), &[2, 4, 2]);
        assert_eq!(
            h.names(),
            &["socket".to_string(), "numa".into(), "l3".into()]
        );
    }

    #[test]
    fn selected_hierarchy_single_core() {
        let node = Hierarchy::new(vec![2, 4]).unwrap();
        assert_eq!(
            selected_hierarchy(&node, &sig(&[0, 1]), 1)
                .unwrap()
                .levels(),
            &[1]
        );
    }

    #[test]
    fn selected_hierarchy_rejects_ragged() {
        // 3 cores with socket-fastest enumeration covers socket 0 twice and
        // socket 1 once — not a box.
        let node = Hierarchy::new(vec![2, 4]).unwrap();
        assert!(selected_hierarchy(&node, &sig(&[0, 1]), 3).is_err());
        // But 3 cores filling sequentially is a partial innermost level: ⟦3⟧.
        assert_eq!(
            selected_hierarchy(&node, &sig(&[1, 0]), 3)
                .unwrap()
                .levels(),
            &[3]
        );
    }

    #[test]
    fn selected_set_is_prefix_of_enumeration() {
        // The selected cores must always be the first n of the full
        // enumeration.
        let node = Hierarchy::new(vec![2, 2, 8]).unwrap();
        for sigma in Permutation::all(3) {
            let full = map_cpu_list(&node, &sigma, node.size()).unwrap();
            for n in [1, 2, 4, 8, 16] {
                let partial = map_cpu_list(&node, &sigma, n).unwrap();
                assert_eq!(partial.as_slice(), &full[..n], "order {sigma}, n={n}");
            }
        }
    }

    #[test]
    fn distinct_core_sets_groups_orders() {
        // LUMI node, 128 processes: every order uses all cores — a single
        // group of 24 orders (Fig. 9 bottom block is one color).
        let node = Hierarchy::new(vec![2, 4, 2, 8]).unwrap();
        let groups = distinct_core_sets(&node, 128).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1.len(), 24);
        // 2 processes: Fig. 9 top block shows 4 distinct core sets.
        let groups = distinct_core_sets(&node, 2).unwrap();
        assert_eq!(groups.len(), 4);
        let sets: Vec<_> = groups.iter().map(|(s, _)| s.clone()).collect();
        assert!(sets.contains(&vec![0, 1]));
        assert!(sets.contains(&vec![0, 8]));
        assert!(sets.contains(&vec![0, 16]));
        assert!(sets.contains(&vec![0, 64]));
    }

    #[test]
    fn figure9_64_proc_core_sets() {
        // Fig. 9, 64 processes on a LUMI node: 4 distinct sets, among them
        // "0-63" (first socket) and "0-31,64-95".
        let node = Hierarchy::new(vec![2, 4, 2, 8]).unwrap();
        let groups = distinct_core_sets(&node, 64).unwrap();
        assert_eq!(groups.len(), 4);
        let sets: Vec<_> = groups.iter().map(|(s, _)| s.clone()).collect();
        let first_socket: Vec<usize> = (0..64).collect();
        assert!(sets.contains(&first_socket));
        let half_each: Vec<usize> = (0..32).chain(64..96).collect();
        assert!(sets.contains(&half_each));
    }
}
