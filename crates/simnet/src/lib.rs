//! # mre-simnet — hierarchical network & memory performance model
//!
//! The simulated fabric standing in for the paper's clusters (Hydra's
//! Omni-Path, LUMI's Slingshot-11, and the intra-node interconnects).
//!
//! The machine is modeled as the tree its [`mre_core::Hierarchy`] spans:
//! every instance of a hierarchy level owns one full-duplex *uplink* to its
//! parent instance with a calibrated bandwidth (or, on multi-rail fabrics,
//! several parallel *rails* at that bandwidth each — see [`rail`]), and
//! every pair of cores communicates along the unique tree path through
//! their lowest common ancestor. Concurrent messages share traversed links **max-min fairly**
//! (progressive water-filling), which is what produces the paper's central
//! effects: spread mappings win when a single communicator has the fabric
//! to itself, packed mappings win (and stay constant) when many
//! communicators compete for the per-node NICs.
//!
//! Collectives are costed as [`schedule::Schedule`]s — rounds of concurrent
//! messages — either alone or merged in lockstep with the schedules of
//! other communicators ([`network::NetworkModel::concurrent_time`]).
//!
//! Compute phases use a roofline with hierarchically shared memory
//! bandwidth ([`memory::MemoryModel`]): cores under the same L3/NUMA/socket
//! split those levels' capacities, reproducing the core-selection effects
//! of the paper's Fig. 9.
//!
//! Calibrations for the two machines of the paper are in [`presets`]; they
//! aim at the right orders of magnitude and relative capacities, not at
//! matching absolute MB/s (see DESIGN.md §5).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bound;
pub mod congestion;
pub mod contention;
pub mod fluid;
pub mod memory;
pub mod network;
pub mod presets;
pub mod rail;
pub mod schedule;
pub mod symbolic;
pub mod timeline;
pub mod utilization;
pub mod workspace;

pub use bound::{
    fluid_lower_bound, fluid_lower_bound_aggregate, schedule_lower_bound,
    schedule_lower_bound_aggregate, RoundLoad,
};
pub use congestion::{
    bound_gap_fluid, bound_gap_lockstep, BoundGap, CongestionProbe, LinkUsage, RailOccupancy,
    RateSegment, RoundMark,
};
pub use contention::{
    max_min_rates, max_min_rates_csr, max_min_rates_reference, ContentionWorkspace,
};
pub use fluid::{
    fluid_time, fluid_time_reference, fluid_time_with_stats, fluid_timeline, FluidMessageSpan,
    FluidSim, FluidStats, FluidTimeline, SimPool,
};
pub use memory::MemoryModel;
pub use network::{ContentionMode, LinkParams, NetworkModel, RoundProfile};
pub use rail::{assign_rail, RailLinkTable, RailPolicy};
pub use schedule::{CacheStats, CostCache, Message, Round, Schedule, SharedCostCache};
pub use symbolic::{PayloadEnvelope, SymbolicScheduleCost};
pub use timeline::{MessageTiming, RoundTimeline, ScheduleTimeline};
pub use utilization::{utilization, utilization_railed, Utilization};
pub use workspace::{thread_workspace_rounds, RoundWorkspace};
