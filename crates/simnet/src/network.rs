//! The hierarchical network model.
//!
//! Every instance of hierarchy level `l` (a node, socket, NUMA domain,
//! group or core) owns one **full-duplex uplink** to its enclosing level
//! `l−1` instance, with a per-level bandwidth. A message between cores
//! whose coordinates first differ at level `j` ascends through the
//! sender-side uplinks of levels `k−1, …, j` (direction *up*), crosses the
//! common level-`j−1` instance, and descends through the receiver-side
//! uplinks (direction *down*).
//!
//! A round of concurrent messages shares every traversed directed link
//! max-min fairly ([`crate::contention::max_min_rates`]); the round time is
//! the slowest message's `latency + bytes / rate`. Latency is calibrated
//! per *crossing level* (the level of the first coordinate difference),
//! matching how per-level ping-pong latencies are measured on real
//! machines.

use crate::contention::max_min_rates_csr;
use crate::rail::{assign_rail, RailPolicy};
use crate::schedule::{Message, Schedule};
use mre_core::Hierarchy;

/// How concurrent messages share link capacity (the contention-model
/// ablation of DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContentionMode {
    /// Progressive water-filling: rates freed by bottlenecked flows are
    /// redistributed (the default, and the realistic model).
    #[default]
    MaxMinFair,
    /// Naive equal split: every flow gets
    /// `min over its links of capacity / flow_count` — no redistribution.
    /// Pessimistic for asymmetric mixes; kept for the ablation study.
    EqualShare,
}

/// Calibration of one hierarchy level's links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Capacity (bytes/s) of the uplink that each instance of this level
    /// has towards its parent, per direction.
    pub uplink_bandwidth: f64,
    /// End-to-end latency (s) of a message whose outermost coordinate
    /// difference is at this level (i.e. that must cross this level).
    pub crossing_latency: f64,
}

/// The calibrated network model of one machine.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    hierarchy: Hierarchy,
    strides: Vec<usize>,
    links: Vec<LinkParams>,
    /// Bandwidth of a local (same-core) copy, for self-messages.
    local_copy_bandwidth: f64,
    /// The local copy rate as observed by a probe message, fixed at
    /// construction (see [`Self::calibrated_local_rate`]).
    calibrated_local_rate: f64,
    mode: ContentionMode,
    /// Parallel uplinks ("rails") per instance of each level; all-1 is the
    /// classic single-rail model, and `uplink_bandwidth` is **per rail**.
    rails: Vec<usize>,
    /// How crossing messages are bound to rails (see [`crate::rail`]).
    rail_policy: RailPolicy,
}

impl NetworkModel {
    /// Builds a model; `links[l]` calibrates hierarchy level `l`
    /// (outermost first, so `links[0]` is the compute-node uplink — the
    /// NIC — when the hierarchy's outermost level is the node level).
    ///
    /// # Panics
    /// If `links.len() != hierarchy.depth()` or any parameter is
    /// non-positive.
    pub fn new(hierarchy: Hierarchy, links: Vec<LinkParams>, local_copy_bandwidth: f64) -> Self {
        assert_eq!(
            links.len(),
            hierarchy.depth(),
            "one LinkParams per hierarchy level"
        );
        assert!(local_copy_bandwidth > 0.0);
        for (l, p) in links.iter().enumerate() {
            assert!(
                p.uplink_bandwidth > 0.0,
                "level {l} bandwidth must be positive"
            );
            assert!(
                p.crossing_latency >= 0.0,
                "level {l} latency must be non-negative"
            );
        }
        let strides = hierarchy.strides();
        let rails = vec![1; hierarchy.depth()];
        let mut model = Self {
            hierarchy,
            strides,
            links,
            local_copy_bandwidth,
            calibrated_local_rate: local_copy_bandwidth,
            mode: ContentionMode::MaxMinFair,
            rails,
            rail_policy: RailPolicy::default(),
        };
        // Calibrate the local copy rate once, at construction, via the same
        // probe the fluid simulator used to re-derive per call: the rate a
        // 1 MB self-message actually achieves under this model. Self
        // messages carry no latency, so this round-trips the configured
        // bandwidth (up to one rounding), and every consumer — fluid or
        // round-based — now reads the same cached value.
        let probe = Message::new(0, 0, 1_000_000);
        model.calibrated_local_rate = 1_000_000.0 / model.message_time(probe);
        model
    }

    /// Switches the contention model (ablation).
    pub fn with_contention_mode(mut self, mode: ContentionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The active contention model.
    pub fn contention_mode(&self) -> ContentionMode {
        self.mode
    }

    /// The hierarchy this model covers.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The per-level link calibration.
    pub fn links(&self) -> &[LinkParams] {
        &self.links
    }

    /// Bandwidth applied to self-messages (intra-core copies).
    pub fn local_copy_bandwidth(&self) -> f64 {
        self.local_copy_bandwidth
    }

    /// The local copy rate as a probe message observes it, cached at
    /// construction. Identical to [`Self::local_copy_bandwidth`] up to one
    /// floating-point rounding; both the fluid simulator and the
    /// round-based profile path use this value, so local copies cost the
    /// same under either model. (The fluid path previously re-derived it
    /// with a fresh 1 MB probe on every call.)
    pub fn calibrated_local_rate(&self) -> f64 {
        self.calibrated_local_rate
    }

    /// Scales the outermost level's uplink bandwidth (e.g. enabling a
    /// second NIC doubles it — the paper's Fig. 8b variant).
    ///
    /// This is the *aggregate* NIC approximation: one link, `factor`× the
    /// bandwidth, so a single flow enjoys the full aggregate. For discrete
    /// rails — one flow per adapter at per-rail bandwidth, the physical
    /// multi-NIC behavior — use [`Self::with_rails`].
    pub fn with_node_uplink_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.links[0].uplink_bandwidth *= factor;
        self
    }

    /// Gives each instance of level `l` `rails[l]` parallel uplinks of the
    /// configured (per-rail) `uplink_bandwidth`, bound by `policy`. All-1
    /// rails reproduce the single-rail model byte for byte.
    ///
    /// # Panics
    /// If `rails.len() != depth` or any count is zero.
    pub fn with_rails(mut self, rails: Vec<usize>, policy: RailPolicy) -> Self {
        assert_eq!(
            rails.len(),
            self.hierarchy.depth(),
            "one rail count per hierarchy level"
        );
        assert!(rails.iter().all(|&r| r >= 1), "rail counts must be >= 1");
        self.rails = rails;
        self.rail_policy = policy;
        // Multi-rail local copies are unaffected, but the calibrated rate
        // could in principle shift if level 0 were degenerate; re-probe so
        // the invariant "construction calibrates" holds for railed models
        // too (self-messages touch no links, so this is a no-op today).
        let probe = Message::new(0, 0, 1_000_000);
        self.calibrated_local_rate = 1_000_000.0 / self.message_time(probe);
        self
    }

    /// [`Self::with_rails`] for the common case: `nics` rails on the
    /// outermost (node) level, one everywhere else.
    pub fn with_node_rails(self, nics: usize, policy: RailPolicy) -> Self {
        let mut rails = vec![1; self.hierarchy.depth()];
        rails[0] = nics;
        self.with_rails(rails, policy)
    }

    /// Per-level rail counts (all 1 unless [`Self::with_rails`] was used).
    pub fn rail_counts(&self) -> &[usize] {
        &self.rails
    }

    /// The rail assignment policy.
    pub fn rail_policy(&self) -> RailPolicy {
        self.rail_policy
    }

    /// True when any level has more than one rail.
    pub fn is_multi_rail(&self) -> bool {
        self.rails.iter().any(|&r| r > 1)
    }

    /// The rail a `src → dst` message occupies on the directed level-`level`
    /// uplink: the sender-side rail going up (`up = true`), the
    /// receiver-side rail coming down. Pure in the endpoints — the same
    /// message always rides the same rails.
    pub fn message_rail(&self, level: usize, src: usize, dst: usize, up: bool) -> usize {
        let (side, peer) = if up { (src, dst) } else { (dst, src) };
        assign_rail(
            self.rail_policy,
            self.rails[level],
            self.strides[level],
            side,
            peer,
        )
    }

    /// Time for a single isolated message (ping cost).
    pub fn message_time(&self, m: Message) -> f64 {
        self.round_time(std::slice::from_ref(&m))
    }

    /// Time for a round of concurrent messages under max-min fair link
    /// sharing.
    pub fn round_time(&self, messages: &[Message]) -> f64 {
        self.round_profile(messages).time(messages)
    }

    /// The size-independent cost structure of a round: the latency and
    /// contended rate of every message.
    ///
    /// Both contention modes allocate rates from message *paths* alone —
    /// payload sizes never enter the water-filling — so a profile computed
    /// once can re-cost the same endpoint pattern for any payload sizes
    /// ([`RoundProfile::time`]). [`crate::schedule::CostCache`] builds a
    /// message-size sweep on exactly this property.
    ///
    /// Delegates to [`round_profile_with`](Self::round_profile_with) on the
    /// thread-local [`RoundWorkspace`](crate::workspace::RoundWorkspace),
    /// so repeated profiling on one thread allocates only the returned
    /// profile.
    pub fn round_profile(&self, messages: &[Message]) -> RoundProfile {
        crate::workspace::with_thread_local(|ws| self.round_profile_with(ws, messages))
    }

    /// [`round_profile`](Self::round_profile) with caller-owned scratch:
    /// the link-interning table, CSR flow lists and solver state all live
    /// in `ws` and are reused across calls, so the steady state allocates
    /// only the returned [`RoundProfile`]. Bit-identical to a fresh-buffer
    /// build — interning order, capacities and the solver's freezing
    /// schedule depend only on the message sequence, never on buffer
    /// history.
    pub fn round_profile_with(
        &self,
        ws: &mut crate::workspace::RoundWorkspace,
        messages: &[Message],
    ) -> RoundProfile {
        if messages.is_empty() {
            return RoundProfile {
                entries: Vec::new(),
                crossing: Vec::new(),
            };
        }
        ws.begin_round();
        let k = self.hierarchy.depth();
        // Directed rail-link table: (level, instance, is_up, rail) → dense
        // index. At one rail per level the rail is constantly 0, so the
        // interning order — and with it every dense index, capacity and
        // solved rate — is identical to the single-rail model.
        ws.link_index.clear();
        ws.capacities.clear();
        ws.flow_offsets.clear();
        ws.flow_offsets.push(0);
        ws.flow_links.clear();
        let mut crossing: Vec<Option<usize>> = Vec::with_capacity(messages.len());
        for m in messages {
            debug_assert!(m.src < self.hierarchy.size() && m.dst < self.hierarchy.size());
            if m.src == m.dst {
                ws.flow_offsets.push(ws.flow_links.len());
                crossing.push(None);
                continue;
            }
            let j = self
                .strides
                .iter()
                .position(|&s| m.src / s != m.dst / s)
                .expect("distinct cores differ at some level");
            for level in j..k {
                let stride = self.strides[level];
                for (core, up) in [(m.src, true), (m.dst, false)] {
                    let instance = core / stride;
                    let rail = self.message_rail(level, m.src, m.dst, up);
                    let next = ws.link_index.len();
                    let idx = *ws
                        .link_index
                        .entry((level, instance, up, rail))
                        .or_insert(next);
                    if idx == ws.capacities.len() {
                        ws.capacities.push(self.links[level].uplink_bandwidth);
                    }
                    ws.flow_links.push(idx);
                }
            }
            ws.flow_offsets.push(ws.flow_links.len());
            crossing.push(Some(j));
        }
        match self.mode {
            ContentionMode::MaxMinFair => max_min_rates_csr(
                &mut ws.contention,
                &ws.flow_offsets,
                &ws.flow_links,
                &ws.capacities,
                &mut ws.rates,
            ),
            ContentionMode::EqualShare => equal_share_rates_csr(
                &mut ws.counts,
                &ws.flow_offsets,
                &ws.flow_links,
                &ws.capacities,
                &mut ws.rates,
            ),
        };
        let entries = ws
            .rates
            .iter()
            .zip(&crossing)
            .map(|(&rate, j)| match j {
                None => (0.0, self.calibrated_local_rate),
                Some(j) => (self.links[*j].crossing_latency, rate),
            })
            .collect();
        RoundProfile { entries, crossing }
    }

    /// Time for a schedule: the sum of its round times (rounds are
    /// synchronized).
    pub fn schedule_time(&self, schedule: &Schedule) -> f64 {
        let t = schedule
            .rounds
            .iter()
            .map(|r| self.round_time(&r.messages))
            .sum();
        // Work counters mirroring the fluid engine's `simnet.fluid.*`
        // family; a relaxed-atomic check when telemetry is off.
        if mre_core::telemetry::enabled() {
            mre_core::telemetry::counter_add("simnet.lockstep.runs", 1);
            mre_core::telemetry::counter_add(
                "simnet.lockstep.rounds",
                schedule.rounds.len() as u64,
            );
            mre_core::telemetry::counter_add(
                "simnet.lockstep.messages",
                schedule
                    .rounds
                    .iter()
                    .map(|r| r.messages.len() as u64)
                    .sum(),
            );
        }
        t
    }

    /// Time for several schedules executing concurrently in lockstep —
    /// how simultaneous collectives in different communicators are costed.
    pub fn concurrent_time(&self, schedules: &[Schedule]) -> f64 {
        self.schedule_time(&Schedule::lockstep(schedules))
    }

    /// Convenience: round-trip-normalized point-to-point bandwidth
    /// achieved by an isolated message of `bytes`.
    pub fn effective_bandwidth(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        bytes as f64 / self.message_time(Message::new(src, dst, bytes))
    }

    /// A hash over everything that determines round costs (hierarchy shape,
    /// link calibration, local-copy bandwidth, contention mode).
    /// [`crate::schedule::CostCache`] uses it to detect being fed a
    /// different model than the one its profiles were computed against.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hierarchy.levels().hash(&mut h);
        for p in &self.links {
            p.uplink_bandwidth.to_bits().hash(&mut h);
            p.crossing_latency.to_bits().hash(&mut h);
        }
        self.local_copy_bandwidth.to_bits().hash(&mut h);
        (self.mode == ContentionMode::MaxMinFair).hash(&mut h);
        self.rails.hash(&mut h);
        self.rail_policy.hash(&mut h);
        h.finish()
    }
}

/// The size-independent cost structure of one round of messages: per
/// message, the crossing latency and the contended rate it was allocated.
///
/// Computed once by [`NetworkModel::round_profile`] from the messages'
/// endpoints, then reusable to cost the same communication pattern at any
/// payload sizes — the contention solve (the expensive part of round
/// costing) depends only on paths, never on byte counts.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundProfile {
    /// Per-message `(latency_s, rate_bytes_per_s)`; self-messages carry
    /// `(0.0, local_copy_bandwidth)`.
    pub entries: Vec<(f64, f64)>,
    /// Per-message crossing level (the level of the outermost coordinate
    /// difference between endpoints); `None` for self-messages.
    pub crossing: Vec<Option<usize>>,
}

impl RoundProfile {
    /// Round time for `messages`, which must be the same pattern (count and
    /// endpoint order) the profile was computed from: the slowest message's
    /// `latency + bytes / rate`.
    pub fn time(&self, messages: &[Message]) -> f64 {
        debug_assert_eq!(self.entries.len(), messages.len());
        self.entries
            .iter()
            .zip(messages)
            .map(|(&(latency, rate), m)| latency + m.bytes as f64 / rate)
            .fold(0.0, f64::max)
    }

    /// Per-message `(start, finish, achieved rate)` timings for `messages`
    /// (same pattern the profile was computed from), with every message
    /// starting at `round_start` — rounds are barrier-synchronized, so all
    /// messages of a round are injected together and each finishes at
    /// `round_start + latency + bytes / rate`.
    pub fn message_timings(
        &self,
        messages: &[Message],
        round_start: f64,
    ) -> Vec<crate::timeline::MessageTiming> {
        debug_assert_eq!(self.entries.len(), messages.len());
        self.entries
            .iter()
            .zip(&self.crossing)
            .zip(messages)
            .map(
                |((&(latency, rate), &crossing), m)| crate::timeline::MessageTiming {
                    src: m.src,
                    dst: m.dst,
                    bytes: m.bytes,
                    start: round_start,
                    finish: round_start + latency + m.bytes as f64 / rate,
                    rate,
                    latency,
                    crossing,
                },
            )
            .collect()
    }
}

/// Naive equal-split rates: each flow gets the minimum over its links of
/// `capacity / flows_on_link`, with no redistribution of unused shares.
fn equal_share_rates_csr(
    counts: &mut Vec<usize>,
    flow_offsets: &[usize],
    flow_links: &[usize],
    capacities: &[f64],
    rates: &mut Vec<f64>,
) {
    counts.clear();
    counts.resize(capacities.len(), 0);
    for &l in flow_links {
        counts[l] += 1;
    }
    rates.clear();
    rates.extend((0..flow_offsets.len().saturating_sub(1)).map(|f| {
        flow_links[flow_offsets[f]..flow_offsets[f + 1]]
            .iter()
            .map(|&l| capacities[l] / counts[l] as f64)
            .fold(f64::INFINITY, f64::min)
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Round;

    /// A toy two-node machine: [2 nodes, 2 sockets, 4 cores],
    /// NIC 10 B/s, socket uplink 40 B/s, core uplink 100 B/s.
    fn toy() -> NetworkModel {
        let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
        NetworkModel::new(
            h,
            vec![
                LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 2.0,
                },
                LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1.0,
                },
                LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 0.5,
                },
            ],
            1000.0,
        )
    }

    #[test]
    fn isolated_message_is_latency_plus_bottleneck() {
        let net = toy();
        // Same socket: only core uplinks (100 B/s), latency 0.5.
        let t = net.message_time(Message::new(0, 1, 100));
        assert!((t - (0.5 + 1.0)).abs() < 1e-12, "{t}");
        // Cross-socket: bottleneck is the socket uplink (40 B/s), latency 1.
        let t = net.message_time(Message::new(0, 4, 100));
        assert!((t - (1.0 + 2.5)).abs() < 1e-12, "{t}");
        // Cross-node: bottleneck is the NIC (10 B/s), latency 2.
        let t = net.message_time(Message::new(0, 8, 100));
        assert!((t - (2.0 + 10.0)).abs() < 1e-12, "{t}");
    }

    #[test]
    fn self_message_uses_local_copy() {
        let net = toy();
        let t = net.message_time(Message::new(3, 3, 500));
        assert!((t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nic_contention_splits_bandwidth() {
        let net = toy();
        // Two node-crossing messages from the same node: share the NIC up
        // direction → 5 B/s each.
        let msgs = [Message::new(0, 8, 100), Message::new(1, 9, 100)];
        let t = net.round_time(&msgs);
        assert!((t - (2.0 + 20.0)).abs() < 1e-12, "{t}");
        // Opposite directions don't contend (full duplex).
        let msgs = [Message::new(0, 8, 100), Message::new(9, 1, 100)];
        let t = net.round_time(&msgs);
        assert!((t - (2.0 + 10.0)).abs() < 1e-12, "{t}");
    }

    #[test]
    fn disjoint_paths_do_not_interact() {
        let net = toy();
        // Messages inside socket 0 of each node.
        let msgs = [Message::new(0, 1, 100), Message::new(8, 9, 100)];
        let t = net.round_time(&msgs);
        let solo = net.message_time(Message::new(0, 1, 100));
        assert!((t - solo).abs() < 1e-12);
    }

    #[test]
    fn round_time_is_max_over_messages() {
        let net = toy();
        let msgs = [Message::new(0, 1, 10), Message::new(0, 8, 10)];
        let t = net.round_time(&msgs);
        // Cross-node message dominates: 2.0 + 10/10 = 3.0.
        assert!((t - 3.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_time_sums_rounds() {
        let net = toy();
        let s = Schedule::with(vec![
            Round::with(vec![Message::new(0, 1, 100)]),
            Round::with(vec![Message::new(0, 8, 100)]),
        ]);
        let expected =
            net.message_time(Message::new(0, 1, 100)) + net.message_time(Message::new(0, 8, 100));
        assert!((net.schedule_time(&s) - expected).abs() < 1e-12);
    }

    #[test]
    fn concurrent_schedules_contend() {
        let net = toy();
        let a = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 100)])]);
        let b = Schedule::with(vec![Round::with(vec![Message::new(1, 9, 100)])]);
        let alone = net.schedule_time(&a);
        let together = net.concurrent_time(&[a, b]);
        assert!(together > alone, "sharing the NIC must slow messages down");
    }

    #[test]
    fn two_nics_halve_cross_node_time() {
        let net = toy();
        let double = toy().with_node_uplink_scale(2.0);
        let m = Message::new(0, 8, 1000);
        let t1 = net.message_time(m) - 2.0; // strip latency
        let t2 = double.message_time(m) - 2.0;
        assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_round_costs_nothing() {
        assert_eq!(toy().round_time(&[]), 0.0);
    }

    #[test]
    fn single_rail_config_is_byte_identical() {
        use crate::rail::RailPolicy;
        let plain = toy();
        for policy in RailPolicy::ALL {
            let railed = toy().with_rails(vec![1, 1, 1], policy);
            let msgs = [
                Message::new(0, 8, 100),
                Message::new(1, 9, 250),
                Message::new(0, 1, 40),
                Message::new(3, 3, 70),
            ];
            assert_eq!(
                plain.round_time(&msgs).to_bits(),
                railed.round_time(&msgs).to_bits(),
                "{policy}"
            );
        }
    }

    #[test]
    fn two_rails_split_flows_that_would_share_one_nic() {
        use crate::rail::RailPolicy;
        let one = toy();
        let two = toy().with_node_rails(2, RailPolicy::RoundRobin);
        assert!(two.is_multi_rail() && !one.is_multi_rail());
        assert_eq!(two.rail_counts(), &[2, 1, 1]);
        // 0→8 rides rail (0+8)%2 = 0, 1→9 rides rail (1+9)%2 = 0: same
        // rail, still serialized at 5 B/s each.
        let same = [Message::new(0, 8, 100), Message::new(1, 9, 100)];
        assert!((two.round_time(&same) - one.round_time(&same)).abs() < 1e-12);
        // 0→8 (rail 0) and 1→8 (rail 1): disjoint rails, each gets the
        // full per-rail 10 B/s — as fast as running alone.
        let split = [Message::new(0, 8, 100), Message::new(1, 8, 100)];
        let solo = two.message_time(Message::new(0, 8, 100));
        assert!((two.round_time(&split) - solo).abs() < 1e-12);
        assert!(one.round_time(&split) > two.round_time(&split) + 1.0);
    }

    #[test]
    fn one_flow_never_exceeds_a_single_rail() {
        use crate::rail::RailPolicy;
        // The discrete-rail model keeps an isolated flow at per-rail
        // bandwidth; the aggregate approximation doubles it.
        let rails = toy().with_node_rails(2, RailPolicy::RoundRobin);
        let aggregate = toy().with_node_uplink_scale(2.0);
        let m = Message::new(0, 8, 1000);
        assert!((rails.message_time(m) - toy().message_time(m)).abs() < 1e-12);
        assert!(aggregate.message_time(m) < rails.message_time(m));
    }

    #[test]
    fn rails_and_policy_enter_the_fingerprint() {
        use crate::rail::RailPolicy;
        let plain = toy();
        let railed = toy().with_node_rails(2, RailPolicy::RoundRobin);
        let hashed = toy().with_node_rails(2, RailPolicy::SrcHash);
        assert_ne!(plain.fingerprint(), railed.fingerprint());
        assert_ne!(railed.fingerprint(), hashed.fingerprint());
    }

    #[test]
    #[should_panic(expected = "one rail count per hierarchy level")]
    fn rail_count_mismatch_panics() {
        let _ = toy().with_rails(vec![2, 1], crate::rail::RailPolicy::RoundRobin);
    }

    #[test]
    fn effective_bandwidth_approaches_bottleneck_for_large_messages() {
        let net = toy();
        let bw = net.effective_bandwidth(0, 8, 1_000_000);
        assert!(bw > 9.9 && bw <= 10.0, "{bw}");
    }

    #[test]
    fn equal_share_matches_max_min_for_symmetric_flows() {
        let fair = toy();
        let naive = toy().with_contention_mode(ContentionMode::EqualShare);
        // Two identical cross-node flows from the same node.
        let msgs = [Message::new(0, 8, 100), Message::new(1, 9, 100)];
        assert!((fair.round_time(&msgs) - naive.round_time(&msgs)).abs() < 1e-12);
    }

    #[test]
    fn equal_share_is_never_faster_than_max_min() {
        let fair = toy();
        let naive = toy().with_contention_mode(ContentionMode::EqualShare);
        // Asymmetric mix: one in-socket flow shares the core uplink of
        // core 0 with a cross-node flow.
        let msgs = [
            Message::new(0, 1, 1000),
            Message::new(0, 8, 1000),
            Message::new(2, 10, 1000),
        ];
        assert!(naive.round_time(&msgs) >= fair.round_time(&msgs) - 1e-12);
        assert_eq!(naive.contention_mode(), ContentionMode::EqualShare);
    }

    #[test]
    #[should_panic(expected = "one LinkParams per hierarchy level")]
    fn link_count_mismatch_panics() {
        let h = Hierarchy::new(vec![2, 2]).unwrap();
        NetworkModel::new(
            h,
            vec![LinkParams {
                uplink_bandwidth: 1.0,
                crossing_latency: 0.0,
            }],
            1.0,
        );
    }
}
