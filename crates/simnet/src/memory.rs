//! Roofline compute model with hierarchically shared memory bandwidth.
//!
//! The strong-scaling behaviour of memory-bound kernels (the paper's NAS
//! CG experiment, Fig. 9) is dominated by how many active cores share each
//! level of the memory system: cores under the same L3 cache split that
//! cache's fill bandwidth, cores in the same NUMA domain split its memory
//! controllers, and so on. Selecting *which* cores run the job therefore
//! matters more than how many (the paper: 8 well-placed processes beat 32
//! badly-placed ones).
//!
//! [`MemoryModel::phase_time`] computes the duration of a compute phase in
//! which every active core streams `bytes` from memory and executes
//! `flops` floating-point operations: each core's achieved stream
//! bandwidth is the max-min fair share of all memory-system levels it
//! traverses (plus its private per-core limit), and the phase time is the
//! roofline `max(bytes / share, flops / flop_rate)` of the slowest core.

use crate::contention::max_min_rates;
use mre_core::Hierarchy;
use std::collections::HashMap;

/// Memory-system calibration of one compute node (or machine).
#[derive(Debug, Clone)]
pub struct MemoryModel {
    hierarchy: Hierarchy,
    strides: Vec<usize>,
    /// `level_bandwidth[l]` — shared stream bandwidth (bytes/s) of each
    /// instance of level `l`, or `None` if that level imposes no memory
    /// constraint (e.g. the node level of a multi-node hierarchy).
    level_bandwidth: Vec<Option<f64>>,
    /// Per-core maximum stream bandwidth (bytes/s).
    core_bandwidth: f64,
    /// Per-core floating-point rate (flop/s).
    flop_rate: f64,
}

impl MemoryModel {
    /// Builds a model. `level_bandwidth` must have one entry per hierarchy
    /// level (outermost first).
    ///
    /// # Panics
    /// On length mismatch or non-positive rates.
    pub fn new(
        hierarchy: Hierarchy,
        level_bandwidth: Vec<Option<f64>>,
        core_bandwidth: f64,
        flop_rate: f64,
    ) -> Self {
        assert_eq!(
            level_bandwidth.len(),
            hierarchy.depth(),
            "one bandwidth entry per hierarchy level"
        );
        assert!(core_bandwidth > 0.0 && flop_rate > 0.0);
        for bw in level_bandwidth.iter().flatten() {
            assert!(*bw > 0.0, "level bandwidths must be positive");
        }
        let strides = hierarchy.strides();
        Self {
            hierarchy,
            strides,
            level_bandwidth,
            core_bandwidth,
            flop_rate,
        }
    }

    /// The hierarchy this model covers.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Per-core floating-point rate.
    pub fn flop_rate(&self) -> f64 {
        self.flop_rate
    }

    /// The max-min fair stream bandwidth each active core achieves.
    ///
    /// `active_cores` are sequential core ids; duplicates are not allowed
    /// (each physical core runs one process).
    pub fn core_bandwidths(&self, active_cores: &[usize]) -> Vec<f64> {
        let n = active_cores.len();
        // Links 0..n are the private per-core limits; shared level-instance
        // links are appended after and deduplicated through `link_index`.
        let mut link_index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut capacities: Vec<f64> = vec![self.core_bandwidth; n];
        let mut flows: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (i, &core) in active_cores.iter().enumerate() {
            debug_assert!(core < self.hierarchy.size());
            let mut path = vec![i];
            for (level, bw) in self.level_bandwidth.iter().enumerate() {
                if let Some(bw) = bw {
                    let instance = core / self.strides[level];
                    let slot = *link_index.entry((level, instance)).or_insert_with(|| {
                        capacities.push(*bw);
                        capacities.len() - 1
                    });
                    path.push(slot);
                }
            }
            flows.push(path);
        }
        max_min_rates(&flows, &capacities)
    }

    /// Roofline duration of a compute phase: every active core streams
    /// `bytes` and executes `flops`; returns the slowest core's
    /// `max(bytes / fair_bandwidth, flops / flop_rate)`.
    pub fn phase_time(&self, active_cores: &[usize], bytes: f64, flops: f64) -> f64 {
        if active_cores.is_empty() {
            return 0.0;
        }
        let rates = self.core_bandwidths(active_cores);
        rates
            .iter()
            .map(|&bw| (bytes / bw).max(flops / self.flop_rate))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy node: [2 sockets, 2 l3, 4 cores]; socket bw 100, L3 bw 40,
    /// core bw 15, flops 1000.
    fn toy() -> MemoryModel {
        let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
        MemoryModel::new(h, vec![Some(100.0), Some(40.0), None], 15.0, 1000.0)
    }

    #[test]
    fn single_core_gets_private_limit() {
        let m = toy();
        let rates = m.core_bandwidths(&[0]);
        assert_eq!(rates, vec![15.0]);
    }

    #[test]
    fn cores_in_one_l3_split_its_bandwidth() {
        let m = toy();
        // All 4 cores of L3 0: 40/4 = 10 each (below the 15 private cap).
        let rates = m.core_bandwidths(&[0, 1, 2, 3]);
        for r in rates {
            assert!((r - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn one_core_per_l3_keeps_private_limit() {
        let m = toy();
        // Cores 0, 4 (the two L3s of socket 0): each 15, socket cap 100
        // not binding.
        let rates = m.core_bandwidths(&[0, 4]);
        assert_eq!(rates, vec![15.0, 15.0]);
    }

    #[test]
    fn socket_cap_binds_when_saturated() {
        // All 8 cores of socket 0: L3 caps 40+40 = 80 < 100 socket, so L3
        // binds: 10 each. Raise the pressure: a model with socket cap 60.
        let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
        let tight = MemoryModel::new(h, vec![Some(60.0), Some(40.0), None], 15.0, 1000.0);
        let rates = tight.core_bandwidths(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let total: f64 = rates.iter().sum();
        assert!(total <= 60.0 + 1e-9, "socket capacity exceeded: {total}");
        for r in rates {
            assert!((r - 7.5).abs() < 1e-9);
        }
    }

    #[test]
    fn placement_beats_count() {
        // The Fig. 9 effect: 2 well-placed cores out-stream 4 packed ones.
        let m = toy();
        let spread2 = m.phase_time(&[0, 4], 100.0, 0.0);
        let packed4 = m.phase_time(&[0, 1, 2, 3], 100.0, 0.0);
        assert!(spread2 < packed4);
    }

    #[test]
    fn flop_bound_phase_ignores_placement() {
        let m = toy();
        let a = m.phase_time(&[0, 1, 2, 3], 0.0, 5000.0);
        let b = m.phase_time(&[0, 4, 8, 12], 0.0, 5000.0);
        assert!((a - 5.0).abs() < 1e-12);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn roofline_takes_slower_side() {
        let m = toy();
        // bytes/bw = 100/15 ≈ 6.67 vs flops 1000/1000 = 1 → memory bound.
        let t = m.phase_time(&[0], 100.0, 1000.0);
        assert!((t - 100.0 / 15.0).abs() < 1e-12);
        // flop bound.
        let t = m.phase_time(&[0], 1.0, 10_000.0);
        assert!((t - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_phase_is_instant() {
        assert_eq!(toy().phase_time(&[], 100.0, 100.0), 0.0);
    }

    #[test]
    fn unconstrained_levels_are_ignored() {
        let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
        let m = MemoryModel::new(h, vec![None, None, None], 15.0, 1.0);
        let rates = m.core_bandwidths(&[0, 1, 2, 3, 4, 5]);
        for r in rates {
            assert_eq!(r, 15.0);
        }
    }

    #[test]
    #[should_panic(expected = "one bandwidth entry per hierarchy level")]
    fn level_count_mismatch_panics() {
        let h = Hierarchy::new(vec![2, 2]).unwrap();
        MemoryModel::new(h, vec![Some(1.0)], 1.0, 1.0);
    }
}
