//! Reusable per-thread scratch for round costing — the allocation-free
//! steady state of the sweep loops (DESIGN.md §7h).
//!
//! Profiling a round ([`NetworkModel::round_profile`]) interns directed
//! rail-links, builds per-flow link lists and runs a contention solve;
//! bounding a round ([`NetworkModel::round_lower_bound`]) accumulates a
//! [`RoundLoad`] histogram. Done naively, every candidate order costed by
//! a sweep re-allocates all of that scratch thousands of times. A
//! [`RoundWorkspace`] owns every one of those buffers and is reused via a
//! thread-local, so after a few warm-up rounds the buffers sit at their
//! high-water marks and the hot loops perform **zero heap allocations**
//! besides the returned profiles (asserted by the counting-allocator test
//! in `crates/bench/tests/costing_kernel.rs`).
//!
//! Reuse is exact, not approximate: interning order, CSR layout, the
//! max-min freezing schedule and the load accumulation depend only on the
//! message sequence, never on buffer history, so workspace-pooled results
//! are **bit-identical** to fresh-buffer results (property-tested).
//!
//! The thread-local is handed out by `with_thread_local`; re-entrant
//! borrows (a closure that itself profiles a round) fall back to a
//! temporary empty workspace, trading a few allocations for
//! deadlock-freedom.
//!
//! [`NetworkModel::round_profile`]: crate::network::NetworkModel::round_profile
//! [`NetworkModel::round_lower_bound`]: crate::network::NetworkModel::round_lower_bound

use crate::bound::RoundLoad;
use crate::contention::ContentionWorkspace;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Every scratch buffer one thread needs to profile and bound rounds:
/// the directed rail-link interning table, CSR flow lists, solver rates,
/// the contention solver's own workspace and a [`RoundLoad`] accumulator.
///
/// All state is reset on entry to each operation; only capacity survives.
/// Obtain one with [`RoundWorkspace::new`] for explicit pooling, or let
/// the costing entry points use the thread-local via `with_thread_local`.
#[derive(Debug, Default)]
pub struct RoundWorkspace {
    /// (level, instance, is_up, rail) → dense link index.
    pub(crate) link_index: HashMap<(usize, usize, bool, usize), usize>,
    /// Capacity of each interned link, in interning order.
    pub(crate) capacities: Vec<f64>,
    /// CSR offsets: flow `f`'s links span `flow_links[o[f]..o[f + 1]]`.
    pub(crate) flow_offsets: Vec<usize>,
    /// CSR link indices, all flows concatenated.
    pub(crate) flow_links: Vec<usize>,
    /// Solved per-flow rates (output buffer of the contention solve).
    pub(crate) rates: Vec<f64>,
    /// Per-link flow counts (equal-share mode's only scratch).
    pub(crate) counts: Vec<usize>,
    /// The max-min solver's internal buffers.
    pub(crate) contention: ContentionWorkspace,
    /// Reusable [`RoundLoad`] accumulator for bound evaluations
    /// (`None` until the first bound on this thread).
    pub(crate) load: Option<RoundLoad>,
    /// Distinct-(level, instance, direction, rail) set for load building.
    pub(crate) seen: HashSet<(usize, usize, bool, usize)>,
    rounds: u64,
}

impl RoundWorkspace {
    /// An empty workspace; no buffer allocates until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many rounds have been profiled through this workspace — the
    /// reuse counter the allocation-free acceptance check reads (every
    /// count past the first on a warm workspace reused all buffers).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    pub(crate) fn begin_round(&mut self) {
        self.rounds += 1;
        if mre_core::telemetry::enabled() {
            mre_core::telemetry::counter_add("simnet.workspace.rounds", 1);
        }
    }
}

thread_local! {
    static WORKSPACE: RefCell<RoundWorkspace> = RefCell::new(RoundWorkspace::new());
}

/// Runs `f` with this thread's [`RoundWorkspace`].
///
/// The workspace is *moved out* of the thread-local for the duration of
/// `f` (an empty placeholder takes its place), so a re-entrant call from
/// inside `f` sees a fresh temporary workspace instead of panicking on a
/// double borrow; the warmed buffers are put back afterwards. Moving an
/// idle `RoundWorkspace` is a few pointer copies — its buffers are not
/// touched.
pub(crate) fn with_thread_local<R>(f: impl FnOnce(&mut RoundWorkspace) -> R) -> R {
    WORKSPACE.with(|cell| {
        let mut ws = cell.replace(RoundWorkspace::new());
        let out = f(&mut ws);
        cell.replace(ws);
        out
    })
}

/// How many rounds the current thread's workspace has profiled — exposed
/// so harnesses can assert that steady-state costing actually reuses the
/// pooled buffers instead of silently falling back to fresh ones.
pub fn thread_workspace_rounds() -> u64 {
    WORKSPACE.with(|cell| cell.borrow().rounds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ContentionMode, NetworkModel};
    use crate::schedule::Message;

    fn toy(mode: ContentionMode) -> NetworkModel {
        let h = mre_core::Hierarchy::new(vec![2, 2, 4]).unwrap();
        NetworkModel::new(
            h,
            vec![
                crate::network::LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 1e-5,
                },
                crate::network::LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1e-6,
                },
                crate::network::LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 1e-7,
                },
            ],
            200.0,
        )
        .with_contention_mode(mode)
    }

    fn cross_round() -> Vec<Message> {
        vec![
            Message::new(0, 8, 1 << 20),
            Message::new(1, 9, 1 << 20),
            Message::new(4, 12, 1 << 20),
            Message::new(2, 2, 1 << 16),
            Message::new(3, 6, 1 << 18),
        ]
    }

    #[test]
    fn reused_workspace_profiles_bit_identically() {
        for mode in [ContentionMode::MaxMinFair, ContentionMode::EqualShare] {
            let net = toy(mode);
            let msgs = cross_round();
            let mut ws = RoundWorkspace::new();
            let fresh = net.round_profile_with(&mut RoundWorkspace::new(), &msgs);
            // Dirty the workspace with unrelated rounds, then re-profile.
            net.round_profile_with(&mut ws, &[Message::new(0, 15, 123)]);
            net.round_profile_with(&mut ws, &[Message::new(5, 5, 7), Message::new(6, 7, 9)]);
            let reused = net.round_profile_with(&mut ws, &msgs);
            assert_eq!(fresh.crossing, reused.crossing);
            assert_eq!(fresh.entries.len(), reused.entries.len());
            for (a, b) in fresh.entries.iter().zip(&reused.entries) {
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "latency drifted under reuse");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "rate drifted under reuse");
            }
            assert_eq!(ws.rounds(), 3);
        }
    }

    #[test]
    fn thread_local_counter_advances() {
        let net = toy(ContentionMode::MaxMinFair);
        let before = thread_workspace_rounds();
        net.round_profile(&cross_round());
        net.round_profile(&cross_round());
        assert_eq!(thread_workspace_rounds(), before + 2);
    }

    #[test]
    fn reused_load_matches_fresh_bounds() {
        let net = toy(ContentionMode::MaxMinFair);
        let msgs = cross_round();
        let fresh = net.round_lower_bound_from(&net.round_load(&msgs));
        // Dirty the thread-local load with a different round first.
        net.round_lower_bound(&[Message::new(0, 15, 1 << 24)]);
        let reused = net.round_lower_bound(&msgs);
        assert_eq!(fresh.to_bits(), reused.to_bits());
        let fresh_agg = net.round_lower_bound_aggregate_from(&net.round_load(&msgs));
        let reused_agg = net.round_lower_bound_aggregate(&msgs);
        assert_eq!(fresh_agg.to_bits(), reused_agg.to_bits());
    }
}
