//! Link-level congestion observatory: time-resolved per-link/per-rail
//! utilization and bound-gap telemetry for both cost engines.
//!
//! The simulator can price a schedule three ways (lockstep, fluid, railed)
//! but [`crate::Utilization`] is a whole-run byte ledger: no time axis, no
//! rail axis, no per-link story. A [`CongestionProbe`] closes that gap. It
//! is fed by either engine —
//!
//! * the lockstep path ([`NetworkModel::schedule_time_probed`]) records,
//!   per round, the busy interval of every directed rail link touched by a
//!   message (every path link carries the flow for `latency + bytes/rate`
//!   starting at the round barrier, exactly as the cost model assumes),
//!   aggregated into piecewise-constant allocated-rate segments;
//! * the fluid path ([`crate::FluidSim::run_probed`]) snapshots the
//!   per-link allocated rate at every water-filling re-solve — rates only
//!   change at solves, so the piecewise-constant segments between
//!   consecutive solves reproduce the engine's exact byte flow.
//!
//! Both feeds resolve links through the same [`RailLinkTable`] the engines
//! use, so multi-rail fabrics are observed per rail, not per aggregate
//! uplink. Attaching a probe never changes a cost: the probed entry points
//! run the identical arithmetic and are property-tested bit-identical to
//! their unprobed twins (`tests/proptests.rs`), and the unprobed paths
//! carry no probe code at all (the same `Option`-check contract
//! `run_traced` established).
//!
//! From the recorded segments the probe derives utilization timelines
//! ([`CongestionProbe::link_segments`]), per-level/per-rail occupancy
//! ([`CongestionProbe::occupancy`]), a rail-imbalance index
//! ([`CongestionProbe::rail_imbalance`]), top-k hot links
//! ([`CongestionProbe::hot_links`]) and per-level **bound gaps**
//! ([`bound_gap_lockstep`], [`bound_gap_fluid`]): the actual time a level
//! stayed busy versus the [`crate::schedule_lower_bound`] /
//! [`crate::fluid_lower_bound`] contribution of that level, i.e. how much
//! pruning headroom each level leaves the branch-and-bound search. Both
//! gaps are ≥ 0 by the same argument that makes the bounds admissible —
//! property-tested alongside them.
//!
//! Exports (CSV and Perfetto counter tracks) live in `mre_trace`; the
//! `congestion_report` binary in `mre-bench` drives the whole pipeline.

use crate::bound::RoundLoad;
use crate::network::{NetworkModel, RoundProfile};
use crate::rail::RailLinkTable;
use crate::schedule::{Message, Schedule};

/// One piecewise-constant span of allocated rate on a directed rail link.
///
/// Segments of a link never overlap and are stored in increasing time
/// order; `rate` is the *sum* of the rates of all flows traversing the
/// link during `[start, finish)`, in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSegment {
    /// Segment start, in simulated seconds.
    pub start: f64,
    /// Segment end, in simulated seconds (`finish > start`).
    pub finish: f64,
    /// Aggregate allocated rate over the segment, bytes per second.
    pub rate: f64,
}

impl RateSegment {
    /// Bytes carried during the segment (`rate · (finish − start)`).
    pub fn bytes(&self) -> f64 {
        self.rate * (self.finish - self.start)
    }
}

/// Lockstep round annotation: where the round sat on the time axis and how
/// long each level stayed busy inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundMark {
    /// Round start (sum of the preceding round durations).
    pub start: f64,
    /// Round duration (this round's `round_time`).
    pub duration: f64,
    /// Per level, the time from the round barrier to the last instant any
    /// level-`l` link carried traffic (0.0 when the round has no level-`l`
    /// traffic). Never exceeds `duration`.
    pub level_span: Vec<f64>,
    /// Per-round byte loads of the links this round touched, sparse and
    /// sorted by link id.
    pub link_bytes: Vec<(u32, u64)>,
}

/// A link's aggregate usage over a whole probed run, with its decoded
/// identity — the row type of [`CongestionProbe::hot_links`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUsage {
    /// Dense [`RailLinkTable`] link id.
    pub link: u32,
    /// Hierarchy level of the uplink (0 = outermost).
    pub level: usize,
    /// Level-`level` instance the link belongs to.
    pub instance: usize,
    /// `true` for the up (sender-side) direction.
    pub up: bool,
    /// Rail index within the instance's uplink bundle.
    pub rail: usize,
    /// Total time the link carried any traffic, in seconds.
    pub busy: f64,
    /// Total bytes carried (integral of the link's rate segments).
    pub bytes: f64,
}

impl LinkUsage {
    /// Busy time as a fraction of `makespan` (0 for an empty run).
    pub fn busy_fraction(&self, makespan: f64) -> f64 {
        if makespan > 0.0 {
            self.busy / makespan
        } else {
            0.0
        }
    }
}

/// Aggregate occupancy of one (level, rail) slice of the fabric — the row
/// type of [`CongestionProbe::occupancy`].
#[derive(Debug, Clone, PartialEq)]
pub struct RailOccupancy {
    /// Hierarchy level (0 = outermost).
    pub level: usize,
    /// Rail index within the level.
    pub rail: usize,
    /// Total bytes carried by all links of this (level, rail), both
    /// directions.
    pub bytes: f64,
    /// Busy time of the busiest single link of this (level, rail).
    pub peak_busy: f64,
    /// Mean busy time over the links that carried any traffic.
    pub mean_busy: f64,
    /// Number of links of this (level, rail) that carried traffic.
    pub active_links: usize,
}

/// One level's row of a bound-gap report: the admissible per-level bound
/// contribution versus the time the level actually stayed busy.
///
/// `actual ≥ bound` always (the bound is admissible); the difference is
/// the headroom the branch-and-bound search cannot see from the bound
/// alone. A small gap means the level's capacity term is tight — pruning
/// decisions driven by that level are near-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundGap {
    /// Hierarchy level (0 = outermost).
    pub level: usize,
    /// The level's contribution to the lower bound, in seconds.
    pub bound: f64,
    /// Observed busy span chargeable to the level, in seconds.
    pub actual: f64,
}

impl BoundGap {
    /// `actual − bound` (≥ 0 up to rounding).
    pub fn gap(&self) -> f64 {
        self.actual - self.bound
    }
}

/// Time-resolved per-link recorder both cost engines can feed.
///
/// Construct one per run with [`CongestionProbe::new`], hand it to
/// [`NetworkModel::schedule_time_probed`] or
/// [`crate::FluidSim::run_probed`], then read the derived reports. A probe
/// records exactly one run; build a fresh one per experiment.
#[derive(Debug, Clone)]
pub struct CongestionProbe {
    table: RailLinkTable,
    depth: usize,
    /// Per link: non-overlapping rate segments in increasing time order.
    segments: Vec<Vec<RateSegment>>,
    /// Per link: Σ segment bytes (kept incrementally).
    link_bytes: Vec<f64>,
    /// Per link: Σ segment durations (segments never overlap).
    busy: Vec<f64>,
    rounds: Vec<RoundMark>,
    makespan: f64,
    // Fluid-feed epoch state: the allocation opened at `since`.
    cur: Vec<f64>,
    active: Vec<u32>,
    since: f64,
    // Lockstep scratch, reused across rounds.
    scratch: Vec<(u32, f64, f64, f64)>,
    events: Vec<(f64, f64, i32)>,
}

impl CongestionProbe {
    /// A probe sized for `net`'s rail-link table, initially empty.
    pub fn new(net: &NetworkModel) -> Self {
        let strides = net.hierarchy().strides();
        let table = RailLinkTable::new(
            net.hierarchy().size(),
            &strides,
            net.rail_counts(),
            net.rail_policy(),
        );
        let n = table.num_links();
        Self {
            table,
            depth: strides.len(),
            segments: vec![Vec::new(); n],
            link_bytes: vec![0.0; n],
            busy: vec![0.0; n],
            rounds: Vec::new(),
            makespan: 0.0,
            cur: vec![0.0; n],
            active: Vec::new(),
            since: 0.0,
            scratch: Vec::new(),
            events: Vec::new(),
        }
    }

    /// The link table the probe resolves ids through (identical layout to
    /// the engines' own tables for the same model).
    pub fn table(&self) -> &RailLinkTable {
        &self.table
    }

    /// Number of directed rail links the probe observes.
    pub fn num_links(&self) -> usize {
        self.segments.len()
    }

    /// Hierarchy depth of the observed model.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Simulated end of the probed run (0 before any feed).
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// The recorded rate segments of link `link`, in time order.
    pub fn link_segments(&self, link: u32) -> &[RateSegment] {
        &self.segments[link as usize]
    }

    /// Total time link `link` carried any traffic.
    pub fn link_busy(&self, link: u32) -> f64 {
        self.busy[link as usize]
    }

    /// Total bytes carried by link `link` (integral of its rate segments).
    pub fn link_bytes(&self, link: u32) -> f64 {
        self.link_bytes[link as usize]
    }

    /// Lockstep round marks, in round order (empty for fluid-fed probes —
    /// the fluid execution has no rounds).
    pub fn rounds(&self) -> &[RoundMark] {
        &self.rounds
    }

    // ------------------------------------------------------------------
    // Lockstep feed
    // ------------------------------------------------------------------

    /// Records one lockstep round: every crossing message occupies each of
    /// its path links at its contended `rate` for `bytes / rate` seconds
    /// starting `latency` after the round barrier; per link the overlapping
    /// message intervals are merged into piecewise-constant aggregate-rate
    /// segments.
    pub(crate) fn record_round(
        &mut self,
        messages: &[Message],
        profile: &RoundProfile,
        start: f64,
        duration: f64,
    ) {
        let k = self.depth;
        let mut mark = RoundMark {
            start,
            duration,
            level_span: vec![0.0; k],
            link_bytes: Vec::new(),
        };
        self.scratch.clear();
        for (i, m) in messages.iter().enumerate() {
            let Some(j) = profile.crossing[i] else {
                continue;
            };
            let (latency, rate) = profile.entries[i];
            let s = start + latency;
            let f = s + m.bytes as f64 / rate;
            for level in j..k {
                let span = &mut mark.level_span[level];
                *span = span.max(f - start);
                for up in [true, false] {
                    let link = self.table.message_link(level, m.src, m.dst, up);
                    self.scratch.push((link, s, f, rate));
                }
            }
        }
        // Per link, merge message intervals into aggregate-rate segments.
        self.scratch
            .sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut i = 0;
        while i < self.scratch.len() {
            let link = self.scratch[i].0;
            let mut end = i;
            while end < self.scratch.len() && self.scratch[end].0 == link {
                end += 1;
            }
            self.events.clear();
            let mut round_bytes = 0.0f64;
            for &(_, s, f, rate) in &self.scratch[i..end] {
                self.events.push((s, rate, 1));
                self.events.push((f, rate, -1));
                round_bytes += rate * (f - s);
            }
            self.events
                .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
            let mut rate = 0.0f64;
            let mut count = 0i32;
            let mut prev = self.events[0].0;
            for e in 0..self.events.len() {
                let (t, r, d) = self.events[e];
                if t > prev && count > 0 {
                    self.push_segment(link, prev, t, rate);
                }
                if t > prev {
                    prev = t;
                }
                rate += f64::from(d) * r;
                count += d;
            }
            mark.link_bytes.push((link, round_bytes.round() as u64));
            i = end;
        }
        self.rounds.push(mark);
        self.makespan = self.makespan.max(start + duration);
    }

    // ------------------------------------------------------------------
    // Fluid feed
    // ------------------------------------------------------------------

    /// Closes the allocation epoch opened at the previous solve (emitting
    /// one segment per link that carried rate) and starts a new, empty one
    /// at `now`. The engine then declares the new allocation with
    /// [`Self::fluid_add`].
    pub(crate) fn fluid_solve_begin(&mut self, now: f64) {
        let dt = now - self.since;
        let since = self.since;
        let mut active = std::mem::take(&mut self.active);
        for &l in &active {
            let rate = self.cur[l as usize];
            if dt > 0.0 && rate > 0.0 {
                self.push_segment(l, since, now, rate);
            }
            self.cur[l as usize] = 0.0;
        }
        active.clear();
        self.active = active;
        self.since = now;
    }

    /// Adds `rate` to the allocation of link `link` in the epoch opened by
    /// the last [`Self::fluid_solve_begin`].
    pub(crate) fn fluid_add(&mut self, link: u32, rate: f64) {
        let cell = &mut self.cur[link as usize];
        if *cell == 0.0 {
            self.active.push(link);
        }
        *cell += rate;
    }

    /// Finalizes a fluid feed at the engine's makespan: closes the last
    /// epoch (normally already empty — every completion triggers a final
    /// zero-allocation snapshot) and records the makespan.
    pub(crate) fn fluid_finish(&mut self, makespan: f64) {
        self.fluid_solve_begin(makespan);
        self.makespan = self.makespan.max(makespan);
    }

    fn push_segment(&mut self, link: u32, start: f64, finish: f64, rate: f64) {
        debug_assert!(finish > start && rate > 0.0);
        self.link_bytes[link as usize] += rate * (finish - start);
        self.busy[link as usize] += finish - start;
        // A solve that didn't change this link's allocation extends the
        // previous segment instead of splitting it.
        if let Some(last) = self.segments[link as usize].last_mut() {
            if last.finish == start && last.rate == rate {
                last.finish = finish;
                return;
            }
        }
        self.segments[link as usize].push(RateSegment {
            start,
            finish,
            rate,
        });
    }

    // ------------------------------------------------------------------
    // Derived reports
    // ------------------------------------------------------------------

    /// The `k` busiest links, ranked by busy time (ties: bytes, then link
    /// id), links that never carried traffic excluded.
    pub fn hot_links(&self, k: usize) -> Vec<LinkUsage> {
        let mut all: Vec<LinkUsage> = (0..self.num_links() as u32)
            .filter(|&l| self.busy[l as usize] > 0.0)
            .map(|l| self.link_usage(l))
            .collect();
        all.sort_by(|a, b| {
            b.busy
                .total_cmp(&a.busy)
                .then(b.bytes.total_cmp(&a.bytes))
                .then(a.link.cmp(&b.link))
        });
        all.truncate(k);
        all
    }

    /// The decoded usage row of one link.
    pub fn link_usage(&self, link: u32) -> LinkUsage {
        let (level, instance, up, rail) = self.table.decode(link);
        LinkUsage {
            link,
            level,
            instance,
            up,
            rail,
            busy: self.busy[link as usize],
            bytes: self.link_bytes[link as usize],
        }
    }

    /// Occupancy per (level, rail), level-major: total bytes, the busiest
    /// link's busy time, the mean busy time over traffic-carrying links
    /// and their count. Every (level, rail) pair of the fabric appears,
    /// idle ones with zeros.
    pub fn occupancy(&self) -> Vec<RailOccupancy> {
        let rails = self.table.rails().to_vec();
        let mut rows = Vec::new();
        for (level, &nrails) in rails.iter().enumerate() {
            for rail in 0..nrails {
                rows.push(RailOccupancy {
                    level,
                    rail,
                    bytes: 0.0,
                    peak_busy: 0.0,
                    mean_busy: 0.0,
                    active_links: 0,
                });
            }
        }
        let row_of =
            |level: usize, rail: usize| -> usize { rails[..level].iter().sum::<usize>() + rail };
        for l in 0..self.num_links() as u32 {
            if self.busy[l as usize] <= 0.0 {
                continue;
            }
            let (level, _, _, rail) = self.table.decode(l);
            let row = &mut rows[row_of(level, rail)];
            row.bytes += self.link_bytes[l as usize];
            row.peak_busy = row.peak_busy.max(self.busy[l as usize]);
            row.mean_busy += self.busy[l as usize];
            row.active_links += 1;
        }
        for row in &mut rows {
            if row.active_links > 0 {
                row.mean_busy /= row.active_links as f64;
            }
        }
        rows
    }

    /// Total bytes per rail of `level` (both directions), rail-indexed.
    pub fn level_rail_bytes(&self, level: usize) -> Vec<f64> {
        let nrails = self.table.rails()[level];
        let mut bytes = vec![0.0; nrails];
        for l in 0..self.num_links() as u32 {
            let (lev, _, _, rail) = self.table.decode(l);
            if lev == level {
                bytes[rail] += self.link_bytes[l as usize];
            }
        }
        bytes
    }

    /// Rail-imbalance index of `level`: max over rails of total rail
    /// bytes, divided by the mean — 1.0 means perfectly striped, `rails`
    /// means all traffic on one rail. Levels with no traffic (or a single
    /// rail) report 1.0.
    pub fn rail_imbalance(&self, level: usize) -> f64 {
        let bytes = self.level_rail_bytes(level);
        let total: f64 = bytes.iter().sum();
        if total <= 0.0 || bytes.len() == 1 {
            return 1.0;
        }
        let mean = total / bytes.len() as f64;
        bytes.iter().fold(0.0f64, |m, &b| m.max(b)) / mean
    }
}

impl NetworkModel {
    /// [`schedule_time`](Self::schedule_time) with a [`CongestionProbe`]
    /// attached: identical arithmetic (the returned cost is bit-identical
    /// to the unprobed call — property-tested), plus per-round recording
    /// of every link's busy intervals into `probe`.
    pub fn schedule_time_probed(&self, schedule: &Schedule, probe: &mut CongestionProbe) -> f64 {
        debug_assert_eq!(
            probe.num_links(),
            RailLinkTable::new(
                self.hierarchy().size(),
                &self.hierarchy().strides(),
                self.rail_counts(),
                self.rail_policy(),
            )
            .num_links(),
            "probe built for a different network model"
        );
        let mut t = 0.0;
        for r in &schedule.rounds {
            let profile = self.round_profile(&r.messages);
            let duration = profile.time(&r.messages);
            probe.record_round(&r.messages, &profile, t, duration);
            t += duration;
        }
        if mre_core::telemetry::enabled() {
            mre_core::telemetry::counter_add("simnet.lockstep.runs", 1);
            mre_core::telemetry::counter_add(
                "simnet.lockstep.rounds",
                schedule.rounds.len() as u64,
            );
            mre_core::telemetry::counter_add(
                "simnet.lockstep.messages",
                schedule
                    .rounds
                    .iter()
                    .map(|r| r.messages.len() as u64)
                    .sum(),
            );
        }
        t
    }
}

/// The level's contribution to the admissible capacity bound of one pooled
/// message load: `min_latency + bytes / (active · bandwidth)` (0 when the
/// level carries nothing) — the same term
/// [`NetworkModel::round_lower_bound_from`] maxes over.
fn level_bound_term(net: &NetworkModel, load: &RoundLoad, level: usize) -> f64 {
    if load.bytes_through[level] == 0 {
        return 0.0;
    }
    let active = load.active_up[level].min(load.active_down[level]).max(1) as f64;
    load.min_latency_through[level]
        + load.bytes_through[level] as f64 / (active * net.links()[level].uplink_bandwidth)
}

/// Per-level bound-gap report of a lockstep run recorded by
/// [`NetworkModel::schedule_time_probed`]: per level, the sum over rounds
/// of the level's capacity-bound term (its contribution to
/// [`schedule_lower_bound`](NetworkModel::schedule_lower_bound)) versus
/// the sum of observed per-round busy spans of that level.
///
/// `actual ≥ bound` for every level: a round's level-`l` traffic starts no
/// earlier than the barrier plus the smallest level-`l` crossing latency,
/// and the direction with fewer active links must drain all level-`l`
/// bytes through `active · bandwidth` capacity at most — the admissibility
/// argument of DESIGN.md §7e, made visible per level.
pub fn bound_gap_lockstep(
    net: &NetworkModel,
    schedule: &Schedule,
    probe: &CongestionProbe,
) -> Vec<BoundGap> {
    let k = net.hierarchy().depth();
    assert_eq!(
        probe.rounds().len(),
        schedule.rounds.len(),
        "probe was not fed by this schedule"
    );
    let mut gaps: Vec<BoundGap> = (0..k)
        .map(|level| BoundGap {
            level,
            bound: 0.0,
            actual: 0.0,
        })
        .collect();
    for (round, mark) in schedule.rounds.iter().zip(probe.rounds()) {
        let load = net.round_load(&round.messages);
        for (level, gap) in gaps.iter_mut().enumerate() {
            if load.bytes_through[level] == 0 {
                continue;
            }
            gap.bound += level_bound_term(net, &load, level);
            gap.actual += mark.level_span[level];
        }
    }
    gaps
}

/// Per-level bound-gap report of a fluid run recorded by
/// [`crate::FluidSim::run_probed`]: per level, the pooled aggregate
/// capacity term of [`crate::fluid_lower_bound`] versus the observed time
/// from injection to the last instant any level-`l` link carried rate.
///
/// `actual ≥ bound` for every level, by the aggregate-term admissibility
/// argument (all level-`l` bytes drain through at most `active ·
/// bandwidth` joint capacity, and none before the smallest crossing
/// latency).
pub fn bound_gap_fluid(
    net: &NetworkModel,
    schedules: &[Schedule],
    probe: &CongestionProbe,
) -> Vec<BoundGap> {
    let k = net.hierarchy().depth();
    let all: Vec<Message> = schedules
        .iter()
        .flat_map(|s| s.rounds.iter())
        .flat_map(|r| r.messages.iter().copied())
        .collect();
    let load = net.round_load(&all);
    let mut gaps: Vec<BoundGap> = (0..k)
        .map(|level| BoundGap {
            level,
            bound: level_bound_term(net, &load, level),
            actual: 0.0,
        })
        .collect();
    for l in 0..probe.num_links() as u32 {
        let (level, _, _, _) = probe.table().decode(l);
        if let Some(last) = probe.link_segments(l).last() {
            gaps[level].actual = gaps[level].actual.max(last.finish);
        }
    }
    gaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::FluidSim;
    use crate::network::{ContentionMode, LinkParams};
    use crate::rail::RailPolicy;
    use crate::schedule::Round;
    use mre_core::Hierarchy;

    /// Two nodes × two sockets × four cores; NIC 10 B/s, socket 40 B/s,
    /// core 100 B/s (the bound.rs toy).
    fn toy() -> NetworkModel {
        let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
        NetworkModel::new(
            h,
            vec![
                LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 2.0,
                },
                LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1.0,
                },
                LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 0.5,
                },
            ],
            1000.0,
        )
    }

    fn two_round_schedule() -> Schedule {
        Schedule::with(vec![
            Round::with(vec![Message::new(0, 8, 100), Message::new(1, 9, 100)]),
            Round::with(vec![Message::new(0, 1, 40), Message::new(4, 5, 40)]),
        ])
    }

    /// Expected per-link byte totals by walking message paths directly —
    /// the independent ledger the probe's segment integrals must match.
    fn expected_link_bytes(net: &NetworkModel, schedules: &[Schedule]) -> Vec<f64> {
        let strides = net.hierarchy().strides();
        let table = RailLinkTable::new(
            net.hierarchy().size(),
            &strides,
            net.rail_counts(),
            net.rail_policy(),
        );
        let mut expected = vec![0.0; table.num_links()];
        for s in schedules {
            for r in &s.rounds {
                for m in &r.messages {
                    if m.src == m.dst {
                        continue;
                    }
                    let j = strides
                        .iter()
                        .position(|&s| m.src / s != m.dst / s)
                        .unwrap();
                    for level in j..strides.len() {
                        for up in [true, false] {
                            let l = table.message_link(level, m.src, m.dst, up);
                            expected[l as usize] += m.bytes as f64;
                        }
                    }
                }
            }
        }
        expected
    }

    fn assert_conserves(probe: &CongestionProbe, expected: &[f64]) {
        for (l, &want) in expected.iter().enumerate() {
            let got: f64 = probe
                .link_segments(l as u32)
                .iter()
                .map(|s| s.bytes())
                .sum();
            assert!(
                (got - want).abs() <= 1e-9 * want.max(1.0),
                "link {l}: integral {got} != routed {want}"
            );
            assert!((probe.link_bytes(l as u32) - want).abs() <= 1e-9 * want.max(1.0));
        }
    }

    #[test]
    fn lockstep_probe_cost_is_bit_identical_and_conserves_bytes() {
        let net = toy();
        let s = two_round_schedule();
        let mut probe = CongestionProbe::new(&net);
        let t = net.schedule_time_probed(&s, &mut probe);
        assert_eq!(t.to_bits(), net.schedule_time(&s).to_bits());
        assert_eq!(probe.rounds().len(), 2);
        assert_eq!(probe.makespan(), t);
        // Round marks tile the time axis.
        let total: f64 = probe.rounds().iter().map(|r| r.duration).sum();
        assert!((total - t).abs() < 1e-12 * t);
        assert_conserves(&probe, &expected_link_bytes(&net, std::slice::from_ref(&s)));
        // Level spans never exceed their round's duration.
        for mark in probe.rounds() {
            for &span in &mark.level_span {
                assert!(span <= mark.duration + 1e-12);
            }
        }
    }

    #[test]
    fn fluid_probe_cost_is_bit_identical_and_conserves_bytes() {
        let net = toy();
        let schedules = vec![two_round_schedule(), two_round_schedule()];
        let unprobed = FluidSim::new(&net).run(&schedules);
        let mut probe = CongestionProbe::new(&net);
        let t = FluidSim::new(&net).run_probed(&schedules, &mut probe);
        assert_eq!(t.to_bits(), unprobed.to_bits());
        assert_eq!(probe.makespan(), t);
        assert!(probe.rounds().is_empty(), "fluid runs have no rounds");
        assert_conserves(&probe, &expected_link_bytes(&net, &schedules));
        // Segments of a link never overlap and stay inside the makespan.
        for l in 0..probe.num_links() as u32 {
            let segs = probe.link_segments(l);
            for w in segs.windows(2) {
                assert!(w[1].start >= w[0].finish - 1e-15);
            }
            if let Some(last) = segs.last() {
                assert!(last.finish <= t + 1e-12 * t);
            }
        }
    }

    #[test]
    fn probes_resolve_rails() {
        let net = toy().with_node_rails(2, RailPolicy::RoundRobin);
        // 0 → 8 rides NIC rail (0+8)%2 = 0, 1 → 8 rides rail 1.
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 100),
            Message::new(1, 8, 300),
        ])]);
        let mut probe = CongestionProbe::new(&net);
        net.schedule_time_probed(&s, &mut probe);
        let rails = probe.level_rail_bytes(0);
        // Each NIC rail appears up (node 0) and down (node 1).
        assert!((rails[0] - 200.0).abs() < 1e-9);
        assert!((rails[1] - 600.0).abs() < 1e-9);
        let imbalance = probe.rail_imbalance(0);
        assert!((imbalance - 600.0 / 400.0).abs() < 1e-12);
        // Single-rail levels and idle levels report neutral imbalance.
        assert_eq!(probe.rail_imbalance(1), 1.0);
        let mut fluid_probe = CongestionProbe::new(&net);
        FluidSim::new(&net).run_probed(std::slice::from_ref(&s), &mut fluid_probe);
        let fluid_rails = fluid_probe.level_rail_bytes(0);
        assert!((fluid_rails[0] - 200.0).abs() < 1e-6);
        assert!((fluid_rails[1] - 600.0).abs() < 1e-6);
    }

    #[test]
    fn hot_links_rank_by_busy_time() {
        let net = toy();
        let s = two_round_schedule();
        let mut probe = CongestionProbe::new(&net);
        net.schedule_time_probed(&s, &mut probe);
        let hot = probe.hot_links(4);
        assert_eq!(hot.len(), 4);
        for w in hot.windows(2) {
            assert!(w[0].busy >= w[1].busy);
        }
        // A flow occupies every link of its path for the same interval,
        // so core 0's uplink matches the NIC's busy time in round 1 *and*
        // adds round 2's core-level copy — the innermost link that shows
        // up in every round is the hot one.
        assert_eq!(hot[0].level, 2);
        assert_eq!((hot[0].instance, hot[0].up), (0, true));
        assert!(hot[0].busy > 0.0 && hot[0].bytes > 0.0);
        // Occupancy rows cover every (level, rail) and ledger the same
        // bytes the links carry.
        let occ = probe.occupancy();
        assert_eq!(occ.len(), 3);
        let total_occ: f64 = occ.iter().map(|o| o.bytes).sum();
        let total_links: f64 = (0..probe.num_links() as u32)
            .map(|l| probe.link_bytes(l))
            .sum();
        assert!((total_occ - total_links).abs() < 1e-9);
    }

    #[test]
    fn bound_gaps_are_nonnegative_and_level_resolved() {
        for mode in [ContentionMode::MaxMinFair, ContentionMode::EqualShare] {
            let net = toy().with_contention_mode(mode);
            let s = two_round_schedule();
            let mut probe = CongestionProbe::new(&net);
            net.schedule_time_probed(&s, &mut probe);
            let gaps = bound_gap_lockstep(&net, &s, &probe);
            assert_eq!(gaps.len(), 3);
            for g in &gaps {
                assert!(
                    g.gap() >= -1e-12 * g.actual.max(1.0),
                    "level {} actual {} < bound {}",
                    g.level,
                    g.actual,
                    g.bound
                );
            }
            // The toy's round 1 crosses the NIC: that level must carry a
            // positive bound and a positive actual span.
            assert!(gaps[0].bound > 0.0 && gaps[0].actual > 0.0);

            let schedules = vec![two_round_schedule(), two_round_schedule()];
            let mut fp = CongestionProbe::new(&net);
            FluidSim::new(&net).run_probed(&schedules, &mut fp);
            for g in bound_gap_fluid(&net, &schedules, &fp) {
                assert!(
                    g.gap() >= -1e-12 * g.actual.max(1.0),
                    "fluid level {} actual {} < bound {}",
                    g.level,
                    g.actual,
                    g.bound
                );
            }
        }
    }
}
