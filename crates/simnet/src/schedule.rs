//! Communication schedules: rounds of concurrent point-to-point messages.
//!
//! A collective operation compiles to a [`Schedule`]: an ordered list of
//! [`Round`]s, each containing the messages that are in flight
//! simultaneously. The network model costs a round under contention and
//! sums rounds; schedules of different communicators executing
//! concurrently are merged in lockstep.
//!
//! Endpoints are **global core ids** (sequential resource ids of the
//! machine hierarchy), so a schedule already encodes the process-to-core
//! mapping under evaluation.

/// One point-to-point message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending core (global sequential id).
    pub src: usize,
    /// Receiving core (global sequential id).
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
}

impl Message {
    /// Convenience constructor.
    pub fn new(src: usize, dst: usize, bytes: u64) -> Self {
        Self { src, dst, bytes }
    }
}

/// A set of messages in flight simultaneously.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Round {
    /// The concurrent messages.
    pub messages: Vec<Message>,
}

impl Round {
    /// An empty round.
    pub fn new() -> Self {
        Self::default()
    }

    /// A round holding the given messages.
    pub fn with(messages: Vec<Message>) -> Self {
        Self { messages }
    }

    /// Adds a message.
    pub fn push(&mut self, m: Message) {
        self.messages.push(m);
    }

    /// Sum of payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Merges another round's messages into this one (concurrent union).
    pub fn merge(&mut self, other: &Round) {
        self.messages.extend_from_slice(&other.messages);
    }

    /// Checks this round's messages for self-messages and duplicate
    /// `(src, dst)` pairs; `round` is the round's index in its schedule,
    /// used only for error reporting.
    fn validate(&self, round: usize) -> Result<(), mre_core::Error> {
        let mut seen = std::collections::HashSet::with_capacity(self.messages.len());
        for m in &self.messages {
            if m.src == m.dst {
                return Err(mre_core::Error::SelfMessage { round, core: m.src });
            }
            if !seen.insert((m.src, m.dst)) {
                return Err(mre_core::Error::DuplicateMessage {
                    round,
                    src: m.src,
                    dst: m.dst,
                });
            }
        }
        Ok(())
    }
}

/// An ordered list of rounds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The rounds, executed in order with a synchronization between
    /// consecutive rounds.
    pub rounds: Vec<Round>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// A schedule from rounds.
    pub fn with(rounds: Vec<Round>) -> Self {
        Self { rounds }
    }

    /// Number of rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Sum of payload bytes over all rounds.
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(Round::total_bytes).sum()
    }

    /// Appends a round.
    pub fn push(&mut self, round: Round) {
        self.rounds.push(round);
    }

    /// Appends another schedule's rounds after this one (sequential
    /// composition).
    pub fn then(&mut self, other: Schedule) {
        self.rounds.extend(other.rounds);
    }

    /// Checks the schedule is well-formed for costing: no self-messages
    /// (`src == dst` occupies no network link — the local-copy cost would
    /// silently enter the round max) and no duplicate `(src, dst)` pairs
    /// within a round (the contention solver would treat them as two
    /// independent flows and halve their rates).
    ///
    /// The collective generators in `mre-mpi` always produce valid
    /// schedules; hand-built or merged ones may not — repair those with
    /// [`canonicalized`](Self::canonicalized).
    pub fn validate(&self) -> Result<(), mre_core::Error> {
        for (i, round) in self.rounds.iter().enumerate() {
            round.validate(i)?;
        }
        Ok(())
    }

    /// A cleaned copy that [`validate`](Self::validate) accepts: drops
    /// self-messages and merges duplicate `(src, dst)` pairs within each
    /// round by summing their bytes (first-appearance order is kept).
    /// Empty rounds are preserved so round indices stay aligned with the
    /// original schedule.
    pub fn canonicalized(&self) -> Schedule {
        let rounds = self
            .rounds
            .iter()
            .map(|round| {
                let mut index: std::collections::HashMap<(usize, usize), usize> =
                    std::collections::HashMap::with_capacity(round.messages.len());
                let mut messages: Vec<Message> = Vec::with_capacity(round.messages.len());
                for m in &round.messages {
                    if m.src == m.dst {
                        continue;
                    }
                    match index.entry((m.src, m.dst)) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            messages[*e.get()].bytes += m.bytes;
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(messages.len());
                            messages.push(*m);
                        }
                    }
                }
                Round { messages }
            })
            .collect();
        Schedule { rounds }
    }

    /// Fingerprint of the schedule's communication *pattern*: the round
    /// structure and message endpoints, ignoring payload sizes.
    ///
    /// Two schedules share a fingerprint exactly when they send the same
    /// `(src, dst)` sequences in the same rounds — which is the unit the
    /// shared cost cache keys on: a collective generator re-instantiated
    /// at a different payload produces the same pattern fingerprint, so
    /// `(pattern_fingerprint, payload)` identifies its cost. This is *not*
    /// collision-free (it is a 64-bit hash), but collisions require
    /// adversarial schedules; the generators in `mre-mpi` are safe.
    pub fn pattern_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.rounds.len().hash(&mut h);
        for round in &self.rounds {
            round.messages.len().hash(&mut h);
            for m in &round.messages {
                m.src.hash(&mut h);
                m.dst.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Merges schedules in lockstep: round `i` of the result is the union
    /// of round `i` of every input (shorter schedules simply stop
    /// contributing). This is how simultaneous collectives in different
    /// communicators are modeled (§4.1.1 step 4).
    pub fn lockstep(schedules: &[Schedule]) -> Schedule {
        let max_rounds = schedules
            .iter()
            .map(Schedule::num_rounds)
            .max()
            .unwrap_or(0);
        let mut rounds = Vec::with_capacity(max_rounds);
        for i in 0..max_rounds {
            let mut round = Round::new();
            for s in schedules {
                if let Some(r) = s.rounds.get(i) {
                    round.merge(r);
                }
            }
            rounds.push(round);
        }
        Schedule { rounds }
    }
}

/// Memoizes round cost structures across message-size sweeps.
///
/// Contended rates depend only on message *endpoints*, never on payload
/// sizes, so the expensive part of costing a round — building link paths
/// and solving max-min water-filling — can be done once per distinct
/// communication pattern and replayed for every payload size. A sweep that
/// re-costs the same collective schedule at 20 message sizes performs the
/// contention solve once per round shape instead of 20 times.
///
/// Keys are the round's endpoint list `[(src, dst), …]` in message order.
/// Different process-to-core mappings (different orders σ, subcommunicator
/// layouts, or collective algorithms) produce different endpoint lists and
/// therefore distinct entries — the cache never conflates them. A
/// fingerprint of the [`NetworkModel`] guards against reusing profiles
/// across different machines or contention modes.
#[derive(Debug, Default)]
pub struct CostCache {
    profiles: std::collections::HashMap<Vec<(usize, usize)>, crate::network::RoundProfile>,
    fingerprint: Option<u64>,
    hits: u64,
    misses: u64,
}

use crate::network::NetworkModel;

impl CostCache {
    /// An empty cache. The first call binds it to that call's model.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(hits, misses)` — profile lookups served from the cache vs.
    /// contention solves performed.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct round patterns cached.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no pattern has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Drops all cached profiles and unbinds the model, keeping the
    /// hit/miss counters.
    pub fn clear(&mut self) {
        self.profiles.clear();
        self.fingerprint = None;
    }

    fn check_model(&mut self, net: &NetworkModel) {
        let fp = net.fingerprint();
        match self.fingerprint {
            None => self.fingerprint = Some(fp),
            Some(bound) => assert_eq!(
                bound, fp,
                "CostCache used with a different NetworkModel than it was built against; \
                 call clear() when switching models"
            ),
        }
    }

    /// Cached equivalent of [`NetworkModel::round_time`].
    pub fn round_time(&mut self, net: &NetworkModel, messages: &[Message]) -> f64 {
        self.check_model(net);
        let key: Vec<(usize, usize)> = messages.iter().map(|m| (m.src, m.dst)).collect();
        match self.profiles.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.get().time(messages)
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(net.round_profile(messages)).time(messages)
            }
        }
    }

    /// Cached equivalent of [`NetworkModel::schedule_time`].
    pub fn schedule_time(&mut self, net: &NetworkModel, schedule: &Schedule) -> f64 {
        schedule
            .rounds
            .iter()
            .map(|r| self.round_time(net, &r.messages))
            .sum()
    }

    /// Cached equivalent of [`NetworkModel::concurrent_time`].
    pub fn concurrent_time(&mut self, net: &NetworkModel, schedules: &[Schedule]) -> f64 {
        self.schedule_time(net, &Schedule::lockstep(schedules))
    }
}

/// Thread-safe memo of `(network model, schedule pattern, payload)` →
/// cost, shared across sweep workers.
///
/// Where [`CostCache`] memoizes per-round contention *profiles* behind a
/// `&mut` receiver, this cache memoizes whole evaluated *costs* behind
/// `&self`, so the parallel sweep's workers — and consecutive payload
/// sweeps, and neighbouring grid cells that happen to generate the same
/// schedule pattern — all share one pool. Entries are sharded across
/// several mutex-protected maps to keep lock contention negligible.
///
/// The [`NetworkModel::fingerprint`] — which covers the hierarchy, link
/// calibration, contention mode, **and the rail count × rail policy** —
/// is folded into every key, so one cache safely serves a whole grid of
/// models: a 1/2/4-rail sweep across rail policies (e.g. `fig8_rails` or
/// the `prune` bench) reuses each configuration's costings without
/// `clear()` choreography and without ever conflating two fabrics.
///
/// # Caller contract
///
/// Keys are `(net.fingerprint(), Schedule::pattern_fingerprint(),
/// payload)`. The pattern fingerprint covers endpoints and round
/// structure but **not** byte counts, so the cached cost is only correct
/// if the schedule's bytes are a deterministic function of (pattern,
/// payload key) — true for every collective generator in `mre-mpi`,
/// where the payload determines all message sizes. Do not feed
/// hand-built schedules whose byte assignment varies independently of
/// the payload key.
#[derive(Debug)]
pub struct SharedCostCache {
    shards: Vec<CostShard>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

/// One lock-striped shard: `(model fingerprint, pattern fingerprint,
/// payload key)` → cost.
type CostShard = std::sync::Mutex<std::collections::HashMap<(u64, u64, u64), f64>>;

impl Default for SharedCostCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedCostCache {
    const SHARDS: usize = 16;

    /// An empty cache, ready for any mix of models.
    pub fn new() -> Self {
        Self {
            shards: (0..Self::SHARDS)
                .map(|_| std::sync::Mutex::new(std::collections::HashMap::new()))
                .collect(),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// `(hits, misses)` — costs served from the cache vs. full schedule
    /// costings performed.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Number of distinct `(model, pattern, payload)` costs cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether no cost has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached costs, keeping the hit/miss counters. No longer
    /// required when switching models (the model fingerprint is part of
    /// every key) — only for reclaiming memory.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }

    fn shard(
        &self,
        key: (u64, u64, u64),
    ) -> &std::sync::Mutex<std::collections::HashMap<(u64, u64, u64), f64>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// `schedule_time(schedule)` memoized under the key
    /// `(net.fingerprint(), schedule.pattern_fingerprint(), payload)` —
    /// see the caller contract on the type.
    pub fn schedule_time(&self, net: &NetworkModel, schedule: &Schedule, payload: u64) -> f64 {
        self.time_keyed(net, schedule.pattern_fingerprint(), payload, || {
            net.schedule_time(schedule)
        })
    }

    /// Memoized cost via an arbitrary costing function — for callers whose
    /// cost is not plain `schedule_time` (e.g. concurrent lockstep runs).
    /// The same caller contract applies: `cost()` must be a deterministic
    /// function of `(model, schedule pattern, payload)`.
    pub fn time_with(
        &self,
        net: &NetworkModel,
        schedule: &Schedule,
        payload: u64,
        cost: impl FnOnce() -> f64,
    ) -> f64 {
        self.time_keyed(net, schedule.pattern_fingerprint(), payload, cost)
    }

    /// Memoized cost under a caller-chosen pattern key — for evaluations
    /// that are not a single schedule's time (e.g. a fluid job set, keyed
    /// by a hash of its schedules' pattern fingerprints). The model
    /// fingerprint is still folded in, so the same key never crosses
    /// fabrics; `cost()` must be a deterministic function of
    /// `(model, pattern_key, payload)`.
    pub fn time_keyed(
        &self,
        net: &NetworkModel,
        pattern_key: u64,
        payload: u64,
        cost: impl FnOnce() -> f64,
    ) -> f64 {
        let key = (net.fingerprint(), pattern_key, payload);
        let shard = self.shard(key);
        if let Some(&t) = shard.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return t;
        }
        // Cost outside the lock: a duplicate solve on a race is cheaper
        // than serializing all workers behind one costing.
        let t = cost();
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        shard.lock().unwrap().insert(key, t);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        let mut s = Schedule::new();
        s.push(Round::with(vec![
            Message::new(0, 1, 100),
            Message::new(1, 0, 50),
        ]));
        s.push(Round::with(vec![Message::new(2, 3, 25)]));
        assert_eq!(s.num_rounds(), 2);
        assert_eq!(s.total_bytes(), 175);
        assert_eq!(s.rounds[0].total_bytes(), 150);
    }

    #[test]
    fn lockstep_merges_by_round_index() {
        let a = Schedule::with(vec![
            Round::with(vec![Message::new(0, 1, 10)]),
            Round::with(vec![Message::new(1, 0, 10)]),
        ]);
        let b = Schedule::with(vec![Round::with(vec![Message::new(2, 3, 20)])]);
        let merged = Schedule::lockstep(&[a, b]);
        assert_eq!(merged.num_rounds(), 2);
        assert_eq!(merged.rounds[0].messages.len(), 2);
        assert_eq!(merged.rounds[1].messages.len(), 1);
    }

    #[test]
    fn lockstep_of_nothing_is_empty() {
        assert_eq!(Schedule::lockstep(&[]).num_rounds(), 0);
    }

    #[test]
    fn validate_flags_self_messages_and_duplicates() {
        let ok = Schedule::with(vec![Round::with(vec![
            Message::new(0, 1, 10),
            Message::new(1, 0, 10),
        ])]);
        assert_eq!(ok.validate(), Ok(()));
        let self_msg = Schedule::with(vec![
            Round::with(vec![Message::new(0, 1, 10)]),
            Round::with(vec![Message::new(2, 2, 10)]),
        ]);
        assert_eq!(
            self_msg.validate(),
            Err(mre_core::Error::SelfMessage { round: 1, core: 2 })
        );
        let dup = Schedule::with(vec![Round::with(vec![
            Message::new(0, 1, 10),
            Message::new(0, 2, 10),
            Message::new(0, 1, 5),
        ])]);
        assert_eq!(
            dup.validate(),
            Err(mre_core::Error::DuplicateMessage {
                round: 0,
                src: 0,
                dst: 1
            })
        );
    }

    #[test]
    fn canonicalized_repairs_and_preserves_bytes_and_order() {
        let messy = Schedule::with(vec![
            Round::with(vec![
                Message::new(0, 1, 10),
                Message::new(3, 3, 99), // self-message: dropped
                Message::new(0, 2, 7),
                Message::new(0, 1, 5), // duplicate: merged into the first
            ]),
            Round::new(), // empty rounds survive so indices stay aligned
        ]);
        let clean = messy.canonicalized();
        assert_eq!(clean.validate(), Ok(()));
        assert_eq!(clean.num_rounds(), 2);
        assert_eq!(
            clean.rounds[0].messages,
            vec![Message::new(0, 1, 15), Message::new(0, 2, 7)]
        );
        assert!(clean.rounds[1].messages.is_empty());
        // A valid schedule canonicalizes to itself.
        assert_eq!(clean.canonicalized(), clean);
    }

    #[test]
    fn then_concatenates() {
        let mut a = Schedule::with(vec![Round::with(vec![Message::new(0, 1, 1)])]);
        let b = Schedule::with(vec![Round::with(vec![Message::new(1, 2, 2)])]);
        a.then(b);
        assert_eq!(a.num_rounds(), 2);
        assert_eq!(a.total_bytes(), 3);
    }

    use crate::network::{ContentionMode, LinkParams, NetworkModel};
    use mre_core::Hierarchy;

    fn toy_network() -> NetworkModel {
        let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
        NetworkModel::new(
            h,
            vec![
                LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 3.0,
                },
                LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1.0,
                },
                LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 0.5,
                },
            ],
            1000.0,
        )
    }

    fn sweep_rounds() -> Vec<Round> {
        vec![
            Round::with(vec![Message::new(0, 8, 100), Message::new(1, 9, 100)]),
            Round::with(vec![Message::new(0, 1, 100), Message::new(2, 2, 100)]),
            Round::with(vec![Message::new(3, 12, 100)]),
        ]
    }

    #[test]
    fn cached_round_time_matches_direct_across_sizes() {
        let net = toy_network();
        let mut cache = CostCache::new();
        for round in sweep_rounds() {
            for bytes in [1u64, 100, 4096, 1 << 20] {
                let sized: Vec<Message> = round
                    .messages
                    .iter()
                    .map(|m| Message::new(m.src, m.dst, bytes))
                    .collect();
                assert_eq!(cache.round_time(&net, &sized), net.round_time(&sized));
            }
        }
    }

    #[test]
    fn size_sweep_solves_each_pattern_once() {
        let net = toy_network();
        let mut cache = CostCache::new();
        let rounds = sweep_rounds();
        let sizes = [1u64, 100, 4096, 1 << 20];
        for &bytes in &sizes {
            for round in &rounds {
                let sized: Vec<Message> = round
                    .messages
                    .iter()
                    .map(|m| Message::new(m.src, m.dst, bytes))
                    .collect();
                cache.round_time(&net, &sized);
            }
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, rounds.len() as u64);
        assert_eq!(hits, (sizes.len() as u64 - 1) * rounds.len() as u64);
        assert_eq!(cache.len(), rounds.len());
    }

    #[test]
    fn cached_schedule_time_matches_direct() {
        let net = toy_network();
        let mut cache = CostCache::new();
        let s = Schedule::with(sweep_rounds());
        assert_eq!(cache.schedule_time(&net, &s), net.schedule_time(&s));
        let other = Schedule::with(vec![Round::with(vec![Message::new(4, 0, 77)])]);
        assert_eq!(
            cache.concurrent_time(&net, &[s.clone(), other.clone()]),
            net.concurrent_time(&[s, other])
        );
    }

    #[test]
    fn distinct_endpoint_patterns_get_distinct_entries() {
        let net = toy_network();
        let mut cache = CostCache::new();
        // Same shape (one message), different endpoints: a node-crossing
        // and an intra-node message must not share a profile.
        let cross = [Message::new(0, 8, 100)];
        let local = [Message::new(0, 1, 100)];
        let t_cross = cache.round_time(&net, &cross);
        let t_local = cache.round_time(&net, &local);
        assert_eq!(cache.len(), 2);
        assert_eq!(t_cross, net.round_time(&cross));
        assert_eq!(t_local, net.round_time(&local));
        assert!(t_cross > t_local);
    }

    #[test]
    #[should_panic(expected = "different NetworkModel")]
    fn model_switch_without_clear_panics() {
        let a = toy_network();
        let b = toy_network().with_contention_mode(ContentionMode::EqualShare);
        let mut cache = CostCache::new();
        cache.round_time(&a, &[Message::new(0, 8, 1)]);
        cache.round_time(&b, &[Message::new(0, 8, 1)]);
    }

    #[test]
    fn clear_rebinds_to_a_new_model() {
        let a = toy_network();
        let b = toy_network().with_node_uplink_scale(2.0);
        let mut cache = CostCache::new();
        let m = [Message::new(0, 8, 1000)];
        cache.round_time(&a, &m);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.round_time(&b, &m), b.round_time(&m));
    }

    #[test]
    fn pattern_fingerprint_ignores_bytes_but_not_endpoints() {
        let small = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 1)])]);
        let large = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 1 << 20)])]);
        let other = Schedule::with(vec![Round::with(vec![Message::new(0, 9, 1)])]);
        let split = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 1)]), Round::new()]);
        assert_eq!(small.pattern_fingerprint(), large.pattern_fingerprint());
        assert_ne!(small.pattern_fingerprint(), other.pattern_fingerprint());
        assert_ne!(small.pattern_fingerprint(), split.pattern_fingerprint());
    }

    #[test]
    fn shared_cache_matches_direct_and_counts_hits() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        let s = Schedule::with(sweep_rounds());
        let t = cache.schedule_time(&net, &s, 100);
        assert_eq!(t, net.schedule_time(&s));
        // Same pattern + payload: served from cache.
        assert_eq!(cache.schedule_time(&net, &s, 100), t);
        // Same pattern, new payload key: a distinct entry.
        cache.schedule_time(&net, &s, 200);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_cache_is_shared_across_threads() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        let s = Schedule::with(sweep_rounds());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for payload in [1u64, 2, 3] {
                        cache.schedule_time(&net, &s, payload);
                    }
                });
            }
        });
        // All threads agreed on 3 distinct entries; at least one lookup
        // per payload was a miss, the rest hits or racing duplicate solves.
        assert_eq!(cache.len(), 3);
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 12);
        assert!(misses >= 3);
    }

    #[test]
    fn shared_cache_time_with_uses_custom_costing() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        let s = Schedule::with(sweep_rounds());
        let t = cache.time_with(&net, &s, 7, || 42.0);
        assert_eq!(t, 42.0);
        // Cached: the closure is not consulted again.
        assert_eq!(cache.time_with(&net, &s, 7, || unreachable!()), 42.0);
    }

    #[test]
    fn shared_cache_keys_models_apart() {
        // One cache serves a whole model grid: same schedule and payload
        // under different fabrics get distinct entries, never a stale
        // cross-model hit — no clear() choreography needed.
        let a = toy_network();
        let b = toy_network().with_contention_mode(ContentionMode::EqualShare);
        let c = toy_network().with_node_uplink_scale(2.0);
        let cache = SharedCostCache::new();
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 1000),
            Message::new(1, 9, 1000),
        ])]);
        let ta = cache.schedule_time(&a, &s, 1000);
        let tb = cache.schedule_time(&b, &s, 1000);
        let tc = cache.schedule_time(&c, &s, 1000);
        assert_eq!(ta, a.schedule_time(&s));
        assert_eq!(tb, b.schedule_time(&s));
        assert_eq!(tc, c.schedule_time(&s));
        assert_eq!(cache.len(), 3);
        // Re-asking under the first model is a hit on its own entry.
        assert_eq!(cache.schedule_time(&a, &s, 1000), ta);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 3));
    }

    #[test]
    fn shared_cache_keys_rail_grids_apart() {
        use crate::rail::RailPolicy;
        // The model fingerprint covers rails × policy, so a 1/2-rail
        // round-robin/affinity grid shares one cache without conflation.
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 4096),
            Message::new(1, 8, 4096),
        ])]);
        let cache = SharedCostCache::new();
        for nics in [1usize, 2] {
            for policy in [RailPolicy::RoundRobin, RailPolicy::Affinity] {
                let net = toy_network().with_node_rails(nics, policy);
                assert_eq!(cache.schedule_time(&net, &s, 4096), net.schedule_time(&s));
            }
        }
        // 1-rail entries collapse across policies (the fingerprint and the
        // physics agree that policy is irrelevant on one rail) but 2-rail
        // entries stay distinct per policy.
        assert!(cache.len() >= 3, "len {}", cache.len());
    }

    #[test]
    fn shared_cache_clear_reclaims() {
        let a = toy_network();
        let b = toy_network().with_node_uplink_scale(2.0);
        let cache = SharedCostCache::new();
        let s = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 1000)])]);
        cache.schedule_time(&a, &s, 1000);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.schedule_time(&b, &s, 1000), b.schedule_time(&s));
    }

    #[test]
    fn shared_cache_time_keyed_separates_pattern_keys() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        assert_eq!(cache.time_keyed(&net, 7, 100, || 1.5), 1.5);
        assert_eq!(cache.time_keyed(&net, 8, 100, || 2.5), 2.5);
        // Cached per key; the closure is not consulted again.
        assert_eq!(cache.time_keyed(&net, 7, 100, || unreachable!()), 1.5);
    }
}
