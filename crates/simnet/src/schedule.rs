//! Communication schedules: rounds of concurrent point-to-point messages.
//!
//! A collective operation compiles to a [`Schedule`]: an ordered list of
//! [`Round`]s, each containing the messages that are in flight
//! simultaneously. The network model costs a round under contention and
//! sums rounds; schedules of different communicators executing
//! concurrently are merged in lockstep.
//!
//! Endpoints are **global core ids** (sequential resource ids of the
//! machine hierarchy), so a schedule already encodes the process-to-core
//! mapping under evaluation.

/// One point-to-point message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending core (global sequential id).
    pub src: usize,
    /// Receiving core (global sequential id).
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
}

impl Message {
    /// Convenience constructor.
    pub fn new(src: usize, dst: usize, bytes: u64) -> Self {
        Self { src, dst, bytes }
    }
}

/// A set of messages in flight simultaneously.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Round {
    /// The concurrent messages.
    pub messages: Vec<Message>,
}

impl Round {
    /// An empty round.
    pub fn new() -> Self {
        Self::default()
    }

    /// A round holding the given messages.
    pub fn with(messages: Vec<Message>) -> Self {
        Self { messages }
    }

    /// Adds a message.
    pub fn push(&mut self, m: Message) {
        self.messages.push(m);
    }

    /// Sum of payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Merges another round's messages into this one (concurrent union).
    pub fn merge(&mut self, other: &Round) {
        self.messages.extend_from_slice(&other.messages);
    }

    /// Fingerprint of this round's endpoint *sequence* `[(src, dst), …]`,
    /// ignoring payload bytes.
    ///
    /// This is the round-granular analogue of
    /// [`Schedule::pattern_fingerprint`]: two rounds share it exactly when
    /// they send the same `(src, dst)` pairs in the same message order.
    /// Sequence hashing (rather than multiset hashing) is a conservative
    /// refinement — a reordered copy of the same message set occupies a
    /// second entry — and is what makes memoized replay **bit-identical**:
    /// a fingerprint hit guarantees the identical message sequence, hence
    /// the identical contention solve and the identical floating-point
    /// fold. Rail assignment under the active [`crate::rail::RailPolicy`]
    /// is a pure function of `(model, level, endpoints)`, so folding the
    /// model fingerprint into the cache key (as [`SharedCostCache`] does)
    /// covers it without hashing rails here.
    pub fn endpoint_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.messages.len().hash(&mut h);
        for m in &self.messages {
            m.src.hash(&mut h);
            m.dst.hash(&mut h);
        }
        h.finish()
    }

    /// Checks this round's messages for self-messages and duplicate
    /// `(src, dst)` pairs; `round` is the round's index in its schedule,
    /// used only for error reporting.
    fn validate(&self, round: usize) -> Result<(), mre_core::Error> {
        let mut seen = std::collections::HashSet::with_capacity(self.messages.len());
        for m in &self.messages {
            if m.src == m.dst {
                return Err(mre_core::Error::SelfMessage { round, core: m.src });
            }
            if !seen.insert((m.src, m.dst)) {
                return Err(mre_core::Error::DuplicateMessage {
                    round,
                    src: m.src,
                    dst: m.dst,
                });
            }
        }
        Ok(())
    }
}

/// An ordered list of rounds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The rounds, executed in order with a synchronization between
    /// consecutive rounds.
    pub rounds: Vec<Round>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// A schedule from rounds.
    pub fn with(rounds: Vec<Round>) -> Self {
        Self { rounds }
    }

    /// Number of rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Sum of payload bytes over all rounds.
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(Round::total_bytes).sum()
    }

    /// Appends a round.
    pub fn push(&mut self, round: Round) {
        self.rounds.push(round);
    }

    /// Appends another schedule's rounds after this one (sequential
    /// composition).
    pub fn then(&mut self, other: Schedule) {
        self.rounds.extend(other.rounds);
    }

    /// Checks the schedule is well-formed for costing: no self-messages
    /// (`src == dst` occupies no network link — the local-copy cost would
    /// silently enter the round max) and no duplicate `(src, dst)` pairs
    /// within a round (the contention solver would treat them as two
    /// independent flows and halve their rates).
    ///
    /// The collective generators in `mre-mpi` always produce valid
    /// schedules; hand-built or merged ones may not — repair those with
    /// [`canonicalized`](Self::canonicalized).
    pub fn validate(&self) -> Result<(), mre_core::Error> {
        for (i, round) in self.rounds.iter().enumerate() {
            round.validate(i)?;
        }
        Ok(())
    }

    /// A cleaned copy that [`validate`](Self::validate) accepts: drops
    /// self-messages and merges duplicate `(src, dst)` pairs within each
    /// round by summing their bytes (first-appearance order is kept).
    /// Empty rounds are preserved so round indices stay aligned with the
    /// original schedule.
    pub fn canonicalized(&self) -> Schedule {
        let rounds = self
            .rounds
            .iter()
            .map(|round| {
                let mut index: std::collections::HashMap<(usize, usize), usize> =
                    std::collections::HashMap::with_capacity(round.messages.len());
                let mut messages: Vec<Message> = Vec::with_capacity(round.messages.len());
                for m in &round.messages {
                    if m.src == m.dst {
                        continue;
                    }
                    match index.entry((m.src, m.dst)) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            messages[*e.get()].bytes += m.bytes;
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(messages.len());
                            messages.push(*m);
                        }
                    }
                }
                Round { messages }
            })
            .collect();
        Schedule { rounds }
    }

    /// Fingerprint of the schedule's communication *pattern*: the round
    /// structure and message endpoints, ignoring payload sizes.
    ///
    /// Two schedules share a fingerprint exactly when they send the same
    /// `(src, dst)` sequences in the same rounds — which is the unit the
    /// shared cost cache keys on: a collective generator re-instantiated
    /// at a different payload produces the same pattern fingerprint, so
    /// `(pattern_fingerprint, payload)` identifies its cost. This is *not*
    /// collision-free (it is a 64-bit hash), but collisions require
    /// adversarial schedules; the generators in `mre-mpi` are safe.
    pub fn pattern_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.rounds.len().hash(&mut h);
        for round in &self.rounds {
            round.messages.len().hash(&mut h);
            for m in &round.messages {
                m.src.hash(&mut h);
                m.dst.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Merges schedules in lockstep: round `i` of the result is the union
    /// of round `i` of every input (shorter schedules simply stop
    /// contributing). This is how simultaneous collectives in different
    /// communicators are modeled (§4.1.1 step 4).
    pub fn lockstep(schedules: &[Schedule]) -> Schedule {
        let max_rounds = schedules
            .iter()
            .map(Schedule::num_rounds)
            .max()
            .unwrap_or(0);
        let mut rounds = Vec::with_capacity(max_rounds);
        for i in 0..max_rounds {
            let mut round = Round::new();
            for s in schedules {
                if let Some(r) = s.rounds.get(i) {
                    round.merge(r);
                }
            }
            rounds.push(round);
        }
        Schedule { rounds }
    }
}

/// Memoizes round cost structures across message-size sweeps.
///
/// Contended rates depend only on message *endpoints*, never on payload
/// sizes, so the expensive part of costing a round — building link paths
/// and solving max-min water-filling — can be done once per distinct
/// communication pattern and replayed for every payload size. A sweep that
/// re-costs the same collective schedule at 20 message sizes performs the
/// contention solve once per round shape instead of 20 times.
///
/// Keys are the round's endpoint list `[(src, dst), …]` in message order.
/// Different process-to-core mappings (different orders σ, subcommunicator
/// layouts, or collective algorithms) produce different endpoint lists and
/// therefore distinct entries — the cache never conflates them. A
/// fingerprint of the [`NetworkModel`] guards against reusing profiles
/// across different machines or contention modes.
#[derive(Debug, Default)]
pub struct CostCache {
    profiles: std::collections::HashMap<Vec<(usize, usize)>, crate::network::RoundProfile>,
    fingerprint: Option<u64>,
    hits: u64,
    misses: u64,
}

use crate::network::NetworkModel;

impl CostCache {
    /// An empty cache. The first call binds it to that call's model.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(hits, misses)` — profile lookups served from the cache vs.
    /// contention solves performed.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct round patterns cached.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no pattern has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Drops all cached profiles and unbinds the model, keeping the
    /// hit/miss counters.
    pub fn clear(&mut self) {
        self.profiles.clear();
        self.fingerprint = None;
    }

    fn check_model(&mut self, net: &NetworkModel) {
        let fp = net.fingerprint();
        match self.fingerprint {
            None => self.fingerprint = Some(fp),
            Some(bound) => assert_eq!(
                bound, fp,
                "CostCache used with a different NetworkModel than it was built against; \
                 call clear() when switching models"
            ),
        }
    }

    /// Cached equivalent of [`NetworkModel::round_time`].
    pub fn round_time(&mut self, net: &NetworkModel, messages: &[Message]) -> f64 {
        self.check_model(net);
        let key: Vec<(usize, usize)> = messages.iter().map(|m| (m.src, m.dst)).collect();
        match self.profiles.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.get().time(messages)
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(net.round_profile(messages)).time(messages)
            }
        }
    }

    /// Cached equivalent of [`NetworkModel::schedule_time`].
    pub fn schedule_time(&mut self, net: &NetworkModel, schedule: &Schedule) -> f64 {
        schedule
            .rounds
            .iter()
            .map(|r| self.round_time(net, &r.messages))
            .sum()
    }

    /// Cached equivalent of [`NetworkModel::concurrent_time`].
    pub fn concurrent_time(&mut self, net: &NetworkModel, schedules: &[Schedule]) -> f64 {
        self.schedule_time(net, &Schedule::lockstep(schedules))
    }
}

/// Thread-safe memo of `(network model, schedule pattern, payload)` →
/// cost, shared across sweep workers.
///
/// Where [`CostCache`] memoizes per-round contention *profiles* behind a
/// `&mut` receiver, this cache memoizes whole evaluated *costs* behind
/// `&self`, so the parallel sweep's workers — and consecutive payload
/// sweeps, and neighbouring grid cells that happen to generate the same
/// schedule pattern — all share one pool. Entries are sharded across
/// several mutex-protected maps to keep lock contention negligible.
///
/// The [`NetworkModel::fingerprint`] — which covers the hierarchy, link
/// calibration, contention mode, **and the rail count × rail policy** —
/// is folded into every key, so one cache safely serves a whole grid of
/// models: a 1/2/4-rail sweep across rail policies (e.g. `fig8_rails` or
/// the `prune` bench) reuses each configuration's costings without
/// `clear()` choreography and without ever conflating two fabrics.
///
/// # Caller contract
///
/// Keys are `(net.fingerprint(), Schedule::pattern_fingerprint(),
/// payload)`. The pattern fingerprint covers endpoints and round
/// structure but **not** byte counts, so the cached cost is only correct
/// if the schedule's bytes are a deterministic function of (pattern,
/// payload key) — true for every collective generator in `mre-mpi`,
/// where the payload determines all message sizes. Do not feed
/// hand-built schedules whose byte assignment varies independently of
/// the payload key.
#[derive(Debug)]
pub struct SharedCostCache {
    shards: Vec<CostShard>,
    round_times: Vec<CostShard>,
    round_profiles: Vec<ProfileShard>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    pattern_hits: std::sync::atomic::AtomicU64,
    round_hits: std::sync::atomic::AtomicU64,
    round_misses: std::sync::atomic::AtomicU64,
}

/// One lock-striped shard: `(model fingerprint, pattern fingerprint,
/// payload key)` → cost. (The round-time tier reuses the same shape with
/// the round's endpoint fingerprint in the middle slot.)
type CostShard = std::sync::Mutex<std::collections::HashMap<(u64, u64, u64), f64>>;

/// One lock-striped shard of the round-profile tier: `(model fingerprint,
/// round endpoint fingerprint)` → solved contention profile. Profiles are
/// payload-independent (contended rates depend only on endpoints), so
/// this tier is shared across the whole payload axis.
type ProfileShard = std::sync::Mutex<
    std::collections::HashMap<(u64, u64), std::sync::Arc<crate::network::RoundProfile>>,
>;

/// Snapshot of the round-granular counters of a [`SharedCostCache`] —
/// the `core.cost_cache.{pattern_hits,round_hits,misses}` telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Whole-schedule costs served from the pattern memo.
    pub pattern_hits: u64,
    /// Rounds resolved without a contention solve: either the round-time
    /// memo hit outright, or the round's profile was already solved and
    /// only the (cheap) payload replay ran.
    pub round_hits: u64,
    /// Rounds that required a full contention solve.
    pub misses: u64,
}

impl Default for SharedCostCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedCostCache {
    const SHARDS: usize = 16;

    /// An empty cache, ready for any mix of models.
    pub fn new() -> Self {
        Self {
            shards: (0..Self::SHARDS)
                .map(|_| std::sync::Mutex::new(std::collections::HashMap::new()))
                .collect(),
            round_times: (0..Self::SHARDS)
                .map(|_| std::sync::Mutex::new(std::collections::HashMap::new()))
                .collect(),
            round_profiles: (0..Self::SHARDS)
                .map(|_| std::sync::Mutex::new(std::collections::HashMap::new()))
                .collect(),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
            pattern_hits: std::sync::atomic::AtomicU64::new(0),
            round_hits: std::sync::atomic::AtomicU64::new(0),
            round_misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// `(hits, misses)` — costs served from the cache vs. full schedule
    /// costings performed.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Number of distinct `(model, pattern, payload)` costs cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether no cost has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached costs (pattern costs, round times and round
    /// profiles), keeping the hit/miss counters. No longer required when
    /// switching models (the model fingerprint is part of every key) —
    /// only for reclaiming memory.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
        for shard in &self.round_times {
            shard.lock().unwrap().clear();
        }
        for shard in &self.round_profiles {
            shard.lock().unwrap().clear();
        }
    }

    /// Snapshot of the round-granular counters: pattern hits, rounds
    /// resolved without a contention solve, and rounds that required one.
    /// These are what [`schedule_time_rounds`](Self::schedule_time_rounds)
    /// and the round memo methods maintain; the flat
    /// [`stats`](Self::stats) pair keeps its historical meaning (pattern
    /// memo hits vs. pattern costings).
    pub fn cache_stats(&self) -> CacheStats {
        use std::sync::atomic::Ordering::Relaxed;
        CacheStats {
            pattern_hits: self.pattern_hits.load(Relaxed),
            round_hits: self.round_hits.load(Relaxed),
            misses: self.round_misses.load(Relaxed),
        }
    }

    fn shard(
        &self,
        key: (u64, u64, u64),
    ) -> &std::sync::Mutex<std::collections::HashMap<(u64, u64, u64), f64>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// `schedule_time(schedule)` memoized under the key
    /// `(net.fingerprint(), schedule.pattern_fingerprint(), payload)` —
    /// see the caller contract on the type.
    pub fn schedule_time(&self, net: &NetworkModel, schedule: &Schedule, payload: u64) -> f64 {
        self.time_keyed(net, schedule.pattern_fingerprint(), payload, || {
            net.schedule_time(schedule)
        })
    }

    /// Memoized cost via an arbitrary costing function — for callers whose
    /// cost is not plain `schedule_time` (e.g. concurrent lockstep runs).
    /// The same caller contract applies: `cost()` must be a deterministic
    /// function of `(model, schedule pattern, payload)`.
    pub fn time_with(
        &self,
        net: &NetworkModel,
        schedule: &Schedule,
        payload: u64,
        cost: impl FnOnce() -> f64,
    ) -> f64 {
        self.time_keyed(net, schedule.pattern_fingerprint(), payload, cost)
    }

    /// Memoized cost under a caller-chosen pattern key — for evaluations
    /// that are not a single schedule's time (e.g. a fluid job set, keyed
    /// by a hash of its schedules' pattern fingerprints). The model
    /// fingerprint is still folded in, so the same key never crosses
    /// fabrics; `cost()` must be a deterministic function of
    /// `(model, pattern_key, payload)`.
    pub fn time_keyed(
        &self,
        net: &NetworkModel,
        pattern_key: u64,
        payload: u64,
        cost: impl FnOnce() -> f64,
    ) -> f64 {
        let key = (net.fingerprint(), pattern_key, payload);
        let shard = self.shard(key);
        if let Some(&t) = shard.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return t;
        }
        // Cost outside the lock: a duplicate solve on a race is cheaper
        // than serializing all workers behind one costing.
        let t = cost();
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        shard.lock().unwrap().insert(key, t);
        t
    }

    fn shard_index<K: std::hash::Hash>(key: &K) -> usize {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % Self::SHARDS
    }

    /// The solved contention profile of a round, memoized under
    /// `(net.fingerprint(), round.endpoint_fingerprint())`.
    ///
    /// Profiles are payload-independent, so one solve serves every payload
    /// on the axis; a returned profile is bit-identical to
    /// `net.round_profile(&round.messages)` because a fingerprint hit
    /// implies the identical endpoint sequence and the solve is a
    /// deterministic function of `(model, endpoints)`. Counts a round hit
    /// when the profile was already solved, a miss when this call solved
    /// it.
    pub fn round_profile_memo(
        &self,
        net: &NetworkModel,
        round: &Round,
    ) -> std::sync::Arc<crate::network::RoundProfile> {
        use std::sync::atomic::Ordering::Relaxed;
        let key = (net.fingerprint(), round.endpoint_fingerprint());
        let shard = &self.round_profiles[Self::shard_index(&key)];
        if let Some(p) = shard.lock().unwrap().get(&key) {
            self.round_hits.fetch_add(1, Relaxed);
            if mre_core::telemetry::enabled() {
                mre_core::telemetry::counter_add("core.cost_cache.round_hits", 1);
            }
            return p.clone();
        }
        // Solve outside the lock; a racing duplicate solve produces the
        // identical profile.
        let p = std::sync::Arc::new(net.round_profile(&round.messages));
        self.round_misses.fetch_add(1, Relaxed);
        if mre_core::telemetry::enabled() {
            mre_core::telemetry::counter_add("core.cost_cache.misses", 1);
        }
        shard.lock().unwrap().insert(key, p.clone());
        p
    }

    /// A round's lockstep time, memoized at round granularity.
    ///
    /// Two tiers: the round-*time* memo keyed `(model fingerprint, round
    /// endpoint fingerprint, payload)` answers repeats outright; on a time
    /// miss the round-*profile* memo (payload-independent) avoids the
    /// contention solve and only the `O(messages)` payload replay runs.
    /// Either tier counts as a `round_hit`; a full solve counts as a
    /// `miss`. Bit-identical to `net.round_time(&round.messages)` under
    /// the caller contract on the type (bytes a deterministic function of
    /// `(pattern, payload)`).
    pub fn round_time_memo(&self, net: &NetworkModel, round: &Round, payload: u64) -> f64 {
        use std::sync::atomic::Ordering::Relaxed;
        let model_fp = net.fingerprint();
        let rfp = round.endpoint_fingerprint();
        let tkey = (model_fp, rfp, payload);
        let tshard = &self.round_times[Self::shard_index(&tkey)];
        if let Some(&t) = tshard.lock().unwrap().get(&tkey) {
            self.round_hits.fetch_add(1, Relaxed);
            if mre_core::telemetry::enabled() {
                mre_core::telemetry::counter_add("core.cost_cache.round_hits", 1);
            }
            return t;
        }
        let pkey = (model_fp, rfp);
        let pshard = &self.round_profiles[Self::shard_index(&pkey)];
        let cached = pshard.lock().unwrap().get(&pkey).cloned();
        let (profile, solved) = match cached {
            Some(p) => (p, false),
            None => {
                let p = std::sync::Arc::new(net.round_profile(&round.messages));
                pshard.lock().unwrap().insert(pkey, p.clone());
                (p, true)
            }
        };
        if solved {
            self.round_misses.fetch_add(1, Relaxed);
        } else {
            self.round_hits.fetch_add(1, Relaxed);
        }
        if mre_core::telemetry::enabled() {
            let name = if solved {
                "core.cost_cache.misses"
            } else {
                "core.cost_cache.round_hits"
            };
            mre_core::telemetry::counter_add(name, 1);
        }
        let t = profile.time(&round.messages);
        tshard.lock().unwrap().insert(tkey, t);
        t
    }

    /// `schedule_time(schedule)` memoized at **both** pattern and round
    /// granularity: a pattern hit answers outright; on a pattern miss each
    /// round goes through [`round_time_memo`](Self::round_time_memo), so
    /// candidate orders that share rounds (or re-cost the same rounds at a
    /// new payload) reuse work at round granularity instead of re-solving
    /// the whole schedule. Same caller contract — and the same result,
    /// bit-for-bit — as [`schedule_time`](Self::schedule_time).
    pub fn schedule_time_rounds(
        &self,
        net: &NetworkModel,
        schedule: &Schedule,
        payload: u64,
    ) -> f64 {
        use std::sync::atomic::Ordering::Relaxed;
        let key = (net.fingerprint(), schedule.pattern_fingerprint(), payload);
        let shard = self.shard(key);
        if let Some(&t) = shard.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Relaxed);
            self.pattern_hits.fetch_add(1, Relaxed);
            if mre_core::telemetry::enabled() {
                mre_core::telemetry::counter_add("core.cost_cache.pattern_hits", 1);
            }
            return t;
        }
        let t: f64 = schedule
            .rounds
            .iter()
            .map(|r| self.round_time_memo(net, r, payload))
            .sum();
        self.misses.fetch_add(1, Relaxed);
        shard.lock().unwrap().insert(key, t);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        let mut s = Schedule::new();
        s.push(Round::with(vec![
            Message::new(0, 1, 100),
            Message::new(1, 0, 50),
        ]));
        s.push(Round::with(vec![Message::new(2, 3, 25)]));
        assert_eq!(s.num_rounds(), 2);
        assert_eq!(s.total_bytes(), 175);
        assert_eq!(s.rounds[0].total_bytes(), 150);
    }

    #[test]
    fn lockstep_merges_by_round_index() {
        let a = Schedule::with(vec![
            Round::with(vec![Message::new(0, 1, 10)]),
            Round::with(vec![Message::new(1, 0, 10)]),
        ]);
        let b = Schedule::with(vec![Round::with(vec![Message::new(2, 3, 20)])]);
        let merged = Schedule::lockstep(&[a, b]);
        assert_eq!(merged.num_rounds(), 2);
        assert_eq!(merged.rounds[0].messages.len(), 2);
        assert_eq!(merged.rounds[1].messages.len(), 1);
    }

    #[test]
    fn lockstep_of_nothing_is_empty() {
        assert_eq!(Schedule::lockstep(&[]).num_rounds(), 0);
    }

    #[test]
    fn validate_flags_self_messages_and_duplicates() {
        let ok = Schedule::with(vec![Round::with(vec![
            Message::new(0, 1, 10),
            Message::new(1, 0, 10),
        ])]);
        assert_eq!(ok.validate(), Ok(()));
        let self_msg = Schedule::with(vec![
            Round::with(vec![Message::new(0, 1, 10)]),
            Round::with(vec![Message::new(2, 2, 10)]),
        ]);
        assert_eq!(
            self_msg.validate(),
            Err(mre_core::Error::SelfMessage { round: 1, core: 2 })
        );
        let dup = Schedule::with(vec![Round::with(vec![
            Message::new(0, 1, 10),
            Message::new(0, 2, 10),
            Message::new(0, 1, 5),
        ])]);
        assert_eq!(
            dup.validate(),
            Err(mre_core::Error::DuplicateMessage {
                round: 0,
                src: 0,
                dst: 1
            })
        );
    }

    #[test]
    fn canonicalized_repairs_and_preserves_bytes_and_order() {
        let messy = Schedule::with(vec![
            Round::with(vec![
                Message::new(0, 1, 10),
                Message::new(3, 3, 99), // self-message: dropped
                Message::new(0, 2, 7),
                Message::new(0, 1, 5), // duplicate: merged into the first
            ]),
            Round::new(), // empty rounds survive so indices stay aligned
        ]);
        let clean = messy.canonicalized();
        assert_eq!(clean.validate(), Ok(()));
        assert_eq!(clean.num_rounds(), 2);
        assert_eq!(
            clean.rounds[0].messages,
            vec![Message::new(0, 1, 15), Message::new(0, 2, 7)]
        );
        assert!(clean.rounds[1].messages.is_empty());
        // A valid schedule canonicalizes to itself.
        assert_eq!(clean.canonicalized(), clean);
    }

    #[test]
    fn then_concatenates() {
        let mut a = Schedule::with(vec![Round::with(vec![Message::new(0, 1, 1)])]);
        let b = Schedule::with(vec![Round::with(vec![Message::new(1, 2, 2)])]);
        a.then(b);
        assert_eq!(a.num_rounds(), 2);
        assert_eq!(a.total_bytes(), 3);
    }

    use crate::network::{ContentionMode, LinkParams, NetworkModel};
    use mre_core::Hierarchy;

    fn toy_network() -> NetworkModel {
        let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
        NetworkModel::new(
            h,
            vec![
                LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 3.0,
                },
                LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1.0,
                },
                LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 0.5,
                },
            ],
            1000.0,
        )
    }

    fn sweep_rounds() -> Vec<Round> {
        vec![
            Round::with(vec![Message::new(0, 8, 100), Message::new(1, 9, 100)]),
            Round::with(vec![Message::new(0, 1, 100), Message::new(2, 2, 100)]),
            Round::with(vec![Message::new(3, 12, 100)]),
        ]
    }

    #[test]
    fn cached_round_time_matches_direct_across_sizes() {
        let net = toy_network();
        let mut cache = CostCache::new();
        for round in sweep_rounds() {
            for bytes in [1u64, 100, 4096, 1 << 20] {
                let sized: Vec<Message> = round
                    .messages
                    .iter()
                    .map(|m| Message::new(m.src, m.dst, bytes))
                    .collect();
                assert_eq!(cache.round_time(&net, &sized), net.round_time(&sized));
            }
        }
    }

    #[test]
    fn size_sweep_solves_each_pattern_once() {
        let net = toy_network();
        let mut cache = CostCache::new();
        let rounds = sweep_rounds();
        let sizes = [1u64, 100, 4096, 1 << 20];
        for &bytes in &sizes {
            for round in &rounds {
                let sized: Vec<Message> = round
                    .messages
                    .iter()
                    .map(|m| Message::new(m.src, m.dst, bytes))
                    .collect();
                cache.round_time(&net, &sized);
            }
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, rounds.len() as u64);
        assert_eq!(hits, (sizes.len() as u64 - 1) * rounds.len() as u64);
        assert_eq!(cache.len(), rounds.len());
    }

    #[test]
    fn cached_schedule_time_matches_direct() {
        let net = toy_network();
        let mut cache = CostCache::new();
        let s = Schedule::with(sweep_rounds());
        assert_eq!(cache.schedule_time(&net, &s), net.schedule_time(&s));
        let other = Schedule::with(vec![Round::with(vec![Message::new(4, 0, 77)])]);
        assert_eq!(
            cache.concurrent_time(&net, &[s.clone(), other.clone()]),
            net.concurrent_time(&[s, other])
        );
    }

    #[test]
    fn distinct_endpoint_patterns_get_distinct_entries() {
        let net = toy_network();
        let mut cache = CostCache::new();
        // Same shape (one message), different endpoints: a node-crossing
        // and an intra-node message must not share a profile.
        let cross = [Message::new(0, 8, 100)];
        let local = [Message::new(0, 1, 100)];
        let t_cross = cache.round_time(&net, &cross);
        let t_local = cache.round_time(&net, &local);
        assert_eq!(cache.len(), 2);
        assert_eq!(t_cross, net.round_time(&cross));
        assert_eq!(t_local, net.round_time(&local));
        assert!(t_cross > t_local);
    }

    #[test]
    #[should_panic(expected = "different NetworkModel")]
    fn model_switch_without_clear_panics() {
        let a = toy_network();
        let b = toy_network().with_contention_mode(ContentionMode::EqualShare);
        let mut cache = CostCache::new();
        cache.round_time(&a, &[Message::new(0, 8, 1)]);
        cache.round_time(&b, &[Message::new(0, 8, 1)]);
    }

    #[test]
    fn clear_rebinds_to_a_new_model() {
        let a = toy_network();
        let b = toy_network().with_node_uplink_scale(2.0);
        let mut cache = CostCache::new();
        let m = [Message::new(0, 8, 1000)];
        cache.round_time(&a, &m);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.round_time(&b, &m), b.round_time(&m));
    }

    #[test]
    fn pattern_fingerprint_ignores_bytes_but_not_endpoints() {
        let small = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 1)])]);
        let large = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 1 << 20)])]);
        let other = Schedule::with(vec![Round::with(vec![Message::new(0, 9, 1)])]);
        let split = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 1)]), Round::new()]);
        assert_eq!(small.pattern_fingerprint(), large.pattern_fingerprint());
        assert_ne!(small.pattern_fingerprint(), other.pattern_fingerprint());
        assert_ne!(small.pattern_fingerprint(), split.pattern_fingerprint());
    }

    #[test]
    fn shared_cache_matches_direct_and_counts_hits() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        let s = Schedule::with(sweep_rounds());
        let t = cache.schedule_time(&net, &s, 100);
        assert_eq!(t, net.schedule_time(&s));
        // Same pattern + payload: served from cache.
        assert_eq!(cache.schedule_time(&net, &s, 100), t);
        // Same pattern, new payload key: a distinct entry.
        cache.schedule_time(&net, &s, 200);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_cache_is_shared_across_threads() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        let s = Schedule::with(sweep_rounds());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for payload in [1u64, 2, 3] {
                        cache.schedule_time(&net, &s, payload);
                    }
                });
            }
        });
        // All threads agreed on 3 distinct entries; at least one lookup
        // per payload was a miss, the rest hits or racing duplicate solves.
        assert_eq!(cache.len(), 3);
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 12);
        assert!(misses >= 3);
    }

    #[test]
    fn shared_cache_time_with_uses_custom_costing() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        let s = Schedule::with(sweep_rounds());
        let t = cache.time_with(&net, &s, 7, || 42.0);
        assert_eq!(t, 42.0);
        // Cached: the closure is not consulted again.
        assert_eq!(cache.time_with(&net, &s, 7, || unreachable!()), 42.0);
    }

    #[test]
    fn shared_cache_keys_models_apart() {
        // One cache serves a whole model grid: same schedule and payload
        // under different fabrics get distinct entries, never a stale
        // cross-model hit — no clear() choreography needed.
        let a = toy_network();
        let b = toy_network().with_contention_mode(ContentionMode::EqualShare);
        let c = toy_network().with_node_uplink_scale(2.0);
        let cache = SharedCostCache::new();
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 1000),
            Message::new(1, 9, 1000),
        ])]);
        let ta = cache.schedule_time(&a, &s, 1000);
        let tb = cache.schedule_time(&b, &s, 1000);
        let tc = cache.schedule_time(&c, &s, 1000);
        assert_eq!(ta, a.schedule_time(&s));
        assert_eq!(tb, b.schedule_time(&s));
        assert_eq!(tc, c.schedule_time(&s));
        assert_eq!(cache.len(), 3);
        // Re-asking under the first model is a hit on its own entry.
        assert_eq!(cache.schedule_time(&a, &s, 1000), ta);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 3));
    }

    #[test]
    fn shared_cache_keys_rail_grids_apart() {
        use crate::rail::RailPolicy;
        // The model fingerprint covers rails × policy, so a 1/2-rail
        // round-robin/affinity grid shares one cache without conflation.
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 4096),
            Message::new(1, 8, 4096),
        ])]);
        let cache = SharedCostCache::new();
        for nics in [1usize, 2] {
            for policy in [RailPolicy::RoundRobin, RailPolicy::Affinity] {
                let net = toy_network().with_node_rails(nics, policy);
                assert_eq!(cache.schedule_time(&net, &s, 4096), net.schedule_time(&s));
            }
        }
        // 1-rail entries collapse across policies (the fingerprint and the
        // physics agree that policy is irrelevant on one rail) but 2-rail
        // entries stay distinct per policy.
        assert!(cache.len() >= 3, "len {}", cache.len());
    }

    #[test]
    fn shared_cache_clear_reclaims() {
        let a = toy_network();
        let b = toy_network().with_node_uplink_scale(2.0);
        let cache = SharedCostCache::new();
        let s = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 1000)])]);
        cache.schedule_time(&a, &s, 1000);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.schedule_time(&b, &s, 1000), b.schedule_time(&s));
    }

    #[test]
    fn round_memoized_schedule_time_is_bit_identical() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        let s = Schedule::with(sweep_rounds());
        let direct = net.schedule_time(&s);
        let memo = cache.schedule_time_rounds(&net, &s, 100);
        assert_eq!(memo.to_bits(), direct.to_bits());
        // Second ask: a pattern hit, same bits.
        assert_eq!(
            cache.schedule_time_rounds(&net, &s, 100).to_bits(),
            direct.to_bits()
        );
        let stats = cache.cache_stats();
        assert_eq!(stats.pattern_hits, 1);
        assert_eq!(stats.misses, 3, "one solve per distinct round");
    }

    #[test]
    fn round_memo_hits_across_payloads_without_resolving() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        // The same endpoint pattern at two payload keys: the second sweep
        // point misses at pattern level but replays every round from its
        // cached profile — round hits, no new contention solves.
        let at = |bytes: u64| {
            Schedule::with(
                sweep_rounds()
                    .iter()
                    .map(|r| {
                        Round::with(
                            r.messages
                                .iter()
                                .map(|m| Message::new(m.src, m.dst, bytes))
                                .collect(),
                        )
                    })
                    .collect(),
            )
        };
        let small = at(100);
        let large = at(1 << 20);
        assert_eq!(
            cache.schedule_time_rounds(&net, &small, 100).to_bits(),
            net.schedule_time(&small).to_bits()
        );
        let before = cache.cache_stats();
        assert_eq!(before.misses, 3);
        assert_eq!(
            cache.schedule_time_rounds(&net, &large, 1 << 20).to_bits(),
            net.schedule_time(&large).to_bits()
        );
        let after = cache.cache_stats();
        assert_eq!(after.misses, 3, "no new solves on the payload axis");
        assert_eq!(after.round_hits, before.round_hits + 3);
    }

    #[test]
    fn shared_rounds_hit_across_different_patterns() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        // Two schedules that are different patterns but share round 0.
        let shared = Round::with(vec![Message::new(0, 8, 64), Message::new(1, 9, 64)]);
        let a = Schedule::with(vec![
            shared.clone(),
            Round::with(vec![Message::new(0, 1, 64)]),
        ]);
        let b = Schedule::with(vec![shared, Round::with(vec![Message::new(2, 3, 64)])]);
        assert_ne!(a.pattern_fingerprint(), b.pattern_fingerprint());
        assert_eq!(
            cache.schedule_time_rounds(&net, &a, 64).to_bits(),
            net.schedule_time(&a).to_bits()
        );
        assert_eq!(
            cache.schedule_time_rounds(&net, &b, 64).to_bits(),
            net.schedule_time(&b).to_bits()
        );
        let stats = cache.cache_stats();
        assert_eq!(stats.pattern_hits, 0);
        assert_eq!(
            stats.round_hits, 1,
            "the shared round hit at round granularity"
        );
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn round_profile_memo_matches_direct_profile() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        let round = Round::with(vec![Message::new(0, 8, 100), Message::new(1, 9, 100)]);
        let memo = cache.round_profile_memo(&net, &round);
        assert_eq!(*memo, net.round_profile(&round.messages));
        // Second ask is a hit returning the same Arc.
        let again = cache.round_profile_memo(&net, &round);
        assert!(std::sync::Arc::ptr_eq(&memo, &again));
        let stats = cache.cache_stats();
        assert_eq!((stats.round_hits, stats.misses), (1, 1));
    }

    #[test]
    fn endpoint_fingerprint_ignores_bytes_not_order() {
        let a = Round::with(vec![Message::new(0, 8, 1), Message::new(1, 9, 2)]);
        let b = Round::with(vec![Message::new(0, 8, 77), Message::new(1, 9, 99)]);
        let swapped = Round::with(vec![Message::new(1, 9, 1), Message::new(0, 8, 2)]);
        assert_eq!(a.endpoint_fingerprint(), b.endpoint_fingerprint());
        assert_ne!(a.endpoint_fingerprint(), swapped.endpoint_fingerprint());
    }

    #[test]
    fn shared_cache_time_keyed_separates_pattern_keys() {
        let net = toy_network();
        let cache = SharedCostCache::new();
        assert_eq!(cache.time_keyed(&net, 7, 100, || 1.5), 1.5);
        assert_eq!(cache.time_keyed(&net, 8, 100, || 2.5), 2.5);
        // Cached per key; the closure is not consulted again.
        assert_eq!(cache.time_keyed(&net, 7, 100, || unreachable!()), 1.5);
    }
}
