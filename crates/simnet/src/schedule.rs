//! Communication schedules: rounds of concurrent point-to-point messages.
//!
//! A collective operation compiles to a [`Schedule`]: an ordered list of
//! [`Round`]s, each containing the messages that are in flight
//! simultaneously. The network model costs a round under contention and
//! sums rounds; schedules of different communicators executing
//! concurrently are merged in lockstep.
//!
//! Endpoints are **global core ids** (sequential resource ids of the
//! machine hierarchy), so a schedule already encodes the process-to-core
//! mapping under evaluation.

/// One point-to-point message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending core (global sequential id).
    pub src: usize,
    /// Receiving core (global sequential id).
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
}

impl Message {
    /// Convenience constructor.
    pub fn new(src: usize, dst: usize, bytes: u64) -> Self {
        Self { src, dst, bytes }
    }
}

/// A set of messages in flight simultaneously.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Round {
    /// The concurrent messages.
    pub messages: Vec<Message>,
}

impl Round {
    /// An empty round.
    pub fn new() -> Self {
        Self::default()
    }

    /// A round holding the given messages.
    pub fn with(messages: Vec<Message>) -> Self {
        Self { messages }
    }

    /// Adds a message.
    pub fn push(&mut self, m: Message) {
        self.messages.push(m);
    }

    /// Sum of payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Merges another round's messages into this one (concurrent union).
    pub fn merge(&mut self, other: &Round) {
        self.messages.extend_from_slice(&other.messages);
    }
}

/// An ordered list of rounds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The rounds, executed in order with a synchronization between
    /// consecutive rounds.
    pub rounds: Vec<Round>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// A schedule from rounds.
    pub fn with(rounds: Vec<Round>) -> Self {
        Self { rounds }
    }

    /// Number of rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Sum of payload bytes over all rounds.
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(Round::total_bytes).sum()
    }

    /// Appends a round.
    pub fn push(&mut self, round: Round) {
        self.rounds.push(round);
    }

    /// Appends another schedule's rounds after this one (sequential
    /// composition).
    pub fn then(&mut self, other: Schedule) {
        self.rounds.extend(other.rounds);
    }

    /// Merges schedules in lockstep: round `i` of the result is the union
    /// of round `i` of every input (shorter schedules simply stop
    /// contributing). This is how simultaneous collectives in different
    /// communicators are modeled (§4.1.1 step 4).
    pub fn lockstep(schedules: &[Schedule]) -> Schedule {
        let max_rounds = schedules.iter().map(Schedule::num_rounds).max().unwrap_or(0);
        let mut rounds = Vec::with_capacity(max_rounds);
        for i in 0..max_rounds {
            let mut round = Round::new();
            for s in schedules {
                if let Some(r) = s.rounds.get(i) {
                    round.merge(r);
                }
            }
            rounds.push(round);
        }
        Schedule { rounds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        let mut s = Schedule::new();
        s.push(Round::with(vec![Message::new(0, 1, 100), Message::new(1, 0, 50)]));
        s.push(Round::with(vec![Message::new(2, 3, 25)]));
        assert_eq!(s.num_rounds(), 2);
        assert_eq!(s.total_bytes(), 175);
        assert_eq!(s.rounds[0].total_bytes(), 150);
    }

    #[test]
    fn lockstep_merges_by_round_index() {
        let a = Schedule::with(vec![
            Round::with(vec![Message::new(0, 1, 10)]),
            Round::with(vec![Message::new(1, 0, 10)]),
        ]);
        let b = Schedule::with(vec![Round::with(vec![Message::new(2, 3, 20)])]);
        let merged = Schedule::lockstep(&[a, b]);
        assert_eq!(merged.num_rounds(), 2);
        assert_eq!(merged.rounds[0].messages.len(), 2);
        assert_eq!(merged.rounds[1].messages.len(), 1);
    }

    #[test]
    fn lockstep_of_nothing_is_empty() {
        assert_eq!(Schedule::lockstep(&[]).num_rounds(), 0);
    }

    #[test]
    fn then_concatenates() {
        let mut a = Schedule::with(vec![Round::with(vec![Message::new(0, 1, 1)])]);
        let b = Schedule::with(vec![Round::with(vec![Message::new(1, 2, 2)])]);
        a.then(b);
        assert_eq!(a.num_rounds(), 2);
        assert_eq!(a.total_bytes(), 3);
    }
}
