//! Per-message timelines of costed schedules.
//!
//! [`NetworkModel::schedule_time`](crate::network::NetworkModel::schedule_time)
//! collapses a schedule to one number; this module keeps the full temporal
//! structure instead: when every message starts, when it finishes, and the
//! contended rate it was allocated. Rounds are barrier-synchronized (the
//! lockstep model of DESIGN.md §5), so round `i + 1` starts exactly when
//! the slowest message of round `i` finishes, and every message of a round
//! starts at the round's start.
//!
//! The timeline is the data source of the `mre-trace` subsystem: critical
//! paths, time-sliced link occupancy, per-rank idle breakdowns and the
//! Chrome `trace_event` export are all derived from it.

use crate::network::NetworkModel;
use crate::schedule::Schedule;
use mre_core::Error;

/// One message's placement on the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageTiming {
    /// Sending core (global sequential id).
    pub src: usize,
    /// Receiving core (global sequential id).
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Simulated time the message is injected (= its round's start).
    pub start: f64,
    /// Simulated time the last byte arrives:
    /// `start + latency + bytes / rate`.
    pub finish: f64,
    /// The contended rate (bytes/s) the max-min solve allocated.
    pub rate: f64,
    /// The crossing latency charged to the message.
    pub latency: f64,
    /// Hierarchy level of the outermost coordinate difference between the
    /// endpoints (`None` for self-messages, which use the local copy rate).
    pub crossing: Option<usize>,
}

impl MessageTiming {
    /// Wall duration of the message on the simulated clock.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// One round's slot on the simulated clock.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTimeline {
    /// When the round's messages are injected.
    pub start: f64,
    /// When the slowest message finishes (the next round's start).
    pub finish: f64,
    /// Per-message timings, in the round's message order.
    pub messages: Vec<MessageTiming>,
}

impl RoundTimeline {
    /// Duration of the round (the slowest message's duration).
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// The full temporal reconstruction of a costed schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleTimeline {
    /// Per-round timelines, in execution order; round starts are
    /// cumulative round times, so the last round's `finish` equals
    /// [`NetworkModel::schedule_time`](crate::network::NetworkModel::schedule_time).
    pub rounds: Vec<RoundTimeline>,
}

impl ScheduleTimeline {
    /// End of the last round — identical (to the last bit) to
    /// [`NetworkModel::schedule_time`](crate::network::NetworkModel::schedule_time)
    /// of the same schedule.
    pub fn total_time(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.finish)
    }

    /// Sum of payload bytes over all traced messages.
    pub fn total_bytes(&self) -> u64 {
        self.messages().map(|m| m.bytes).sum()
    }

    /// All message timings in (round, message) order.
    pub fn messages(&self) -> impl Iterator<Item = &MessageTiming> {
        self.rounds.iter().flat_map(|r| r.messages.iter())
    }

    /// Number of traced messages.
    pub fn num_messages(&self) -> usize {
        self.rounds.iter().map(|r| r.messages.len()).sum()
    }
}

impl NetworkModel {
    /// Reconstructs the per-message timeline of `schedule` under this
    /// model's contention discipline.
    ///
    /// The schedule is validated first ([`Schedule::validate`]):
    /// self-messages and duplicate `(src, dst)` pairs within a round are
    /// rejected with a clear error rather than silently mis-timed — use
    /// [`Schedule::canonicalized`] to clean a schedule that carries them.
    pub fn schedule_timeline(&self, schedule: &Schedule) -> Result<ScheduleTimeline, Error> {
        schedule.validate()?;
        let mut rounds = Vec::with_capacity(schedule.num_rounds());
        let mut clock = 0.0f64;
        for round in &schedule.rounds {
            let profile = self.round_profile(&round.messages);
            let messages = profile.message_timings(&round.messages, clock);
            let finish = clock + profile.time(&round.messages);
            rounds.push(RoundTimeline {
                start: clock,
                finish,
                messages,
            });
            clock = finish;
        }
        let timeline = ScheduleTimeline { rounds };
        // Per-level byte accounting, aggregated once per reconstruction
        // (a relaxed load when no telemetry collector is installed).
        if mre_core::telemetry::enabled() {
            let h = self.hierarchy();
            let mut per_level = vec![0u64; h.depth()];
            let mut local = 0u64;
            for m in timeline.messages() {
                match m.crossing {
                    Some(j) => per_level[j] += m.bytes,
                    None => local += m.bytes,
                }
            }
            mre_core::telemetry::counter_add("simnet.timelines", 1);
            for (j, &bytes) in per_level.iter().enumerate() {
                if bytes > 0 {
                    mre_core::telemetry::counter_add(
                        &format!("simnet.bytes.crossing.{}", h.name(j)),
                        bytes,
                    );
                }
            }
            if local > 0 {
                mre_core::telemetry::counter_add("simnet.bytes.local", local);
            }
        }
        Ok(timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LinkParams;
    use crate::schedule::{Message, Round};
    use mre_core::Hierarchy;

    fn toy() -> NetworkModel {
        let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
        NetworkModel::new(
            h,
            vec![
                LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 2.0,
                },
                LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1.0,
                },
                LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 0.5,
                },
            ],
            1000.0,
        )
    }

    #[test]
    fn timeline_end_equals_schedule_time() {
        let net = toy();
        let s = Schedule::with(vec![
            Round::with(vec![Message::new(0, 8, 100), Message::new(1, 9, 100)]),
            Round::with(vec![Message::new(0, 1, 100)]),
        ]);
        let tl = net.schedule_timeline(&s).unwrap();
        assert_eq!(tl.total_time(), net.schedule_time(&s));
        assert_eq!(tl.total_bytes(), s.total_bytes());
        assert_eq!(tl.num_messages(), 3);
    }

    #[test]
    fn rounds_abut_and_messages_start_at_round_start() {
        let net = toy();
        let s = Schedule::with(vec![
            Round::with(vec![Message::new(0, 8, 100)]),
            Round::with(vec![Message::new(8, 0, 50), Message::new(1, 2, 10)]),
        ]);
        let tl = net.schedule_timeline(&s).unwrap();
        assert_eq!(tl.rounds[0].start, 0.0);
        assert_eq!(tl.rounds[1].start, tl.rounds[0].finish);
        for r in &tl.rounds {
            for m in &r.messages {
                assert_eq!(m.start, r.start);
                assert!(m.finish <= r.finish + 1e-15);
                assert!(m.finish >= m.start);
            }
        }
        // The round finish is the slowest message's finish.
        let slowest = tl.rounds[1]
            .messages
            .iter()
            .map(|m| m.finish)
            .fold(0.0, f64::max);
        assert_eq!(tl.rounds[1].finish, slowest);
    }

    #[test]
    fn contended_messages_share_rate() {
        let net = toy();
        // Two node-crossing messages out of the same node: 5 B/s each.
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 100),
            Message::new(1, 9, 100),
        ])]);
        let tl = net.schedule_timeline(&s).unwrap();
        for m in &tl.rounds[0].messages {
            assert!((m.rate - 5.0).abs() < 1e-12, "rate {}", m.rate);
            assert_eq!(m.crossing, Some(0));
            assert_eq!(m.latency, 2.0);
        }
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        let net = toy();
        let self_msg = Schedule::with(vec![Round::with(vec![Message::new(3, 3, 1)])]);
        assert_eq!(
            net.schedule_timeline(&self_msg),
            Err(Error::SelfMessage { round: 0, core: 3 })
        );
        let dup = Schedule::with(vec![Round::with(vec![
            Message::new(0, 1, 1),
            Message::new(0, 1, 2),
        ])]);
        assert_eq!(
            net.schedule_timeline(&dup),
            Err(Error::DuplicateMessage {
                round: 0,
                src: 0,
                dst: 1
            })
        );
        // Canonicalization repairs both.
        let tl = net
            .schedule_timeline(&self_msg.canonicalized())
            .expect("canonicalized schedule is valid");
        assert_eq!(tl.num_messages(), 0);
        assert!(net.schedule_timeline(&dup.canonicalized()).is_ok());
    }

    #[test]
    fn empty_schedule_has_empty_timeline() {
        let tl = toy().schedule_timeline(&Schedule::new()).unwrap();
        assert_eq!(tl.total_time(), 0.0);
        assert_eq!(tl.total_bytes(), 0);
        assert_eq!(tl.num_messages(), 0);
    }
}
