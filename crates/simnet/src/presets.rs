//! Calibrated models of the paper's two machines.
//!
//! Values are engineering estimates from the published hardware (Omni-Path
//! 100 Gb/s, Slingshot-11 200 Gb/s, UPI/xGMI inter-socket links, DDR4-2666
//! / DDR4-3200 memory): the intent is correct *orders of magnitude and
//! orderings* between levels, which is what determines who wins between
//! mappings. Absolute MB/s are not expected to match the paper's testbeds
//! (DESIGN.md §5).

use crate::memory::MemoryModel;
use crate::network::{LinkParams, NetworkModel};
use crate::rail::RailPolicy;
use mre_core::Hierarchy;

/// Hydra network: `⟦nodes, 2, 2, 8⟧` — dual Xeon 6130F, Omni-Path.
///
/// `nics` is the number of network interfaces per node (the paper uses 1
/// by default and 2 for Fig. 8b).
pub fn hydra_network(nodes: usize, nics: usize) -> NetworkModel {
    assert!(nics >= 1);
    let h = Hierarchy::new(vec![nodes, 2, 2, 8]).expect("static Hydra hierarchy");
    NetworkModel::new(
        h,
        vec![
            // Node uplink: Omni-Path 100 Gb/s per NIC.
            LinkParams {
                uplink_bandwidth: 12.5e9 * nics as f64,
                crossing_latency: 1.8e-6,
            },
            // Socket uplink: UPI (3 links ≈ 19.2 GB/s usable, per direction).
            LinkParams {
                uplink_bandwidth: 19.2e9,
                crossing_latency: 0.8e-6,
            },
            // Fake-group uplink: on-die mesh slice.
            LinkParams {
                uplink_bandwidth: 40.0e9,
                crossing_latency: 0.45e-6,
            },
            // Core uplink: single-stream shared-memory copy rate.
            LinkParams {
                uplink_bandwidth: 9.0e9,
                crossing_latency: 0.30e-6,
            },
        ],
        20.0e9,
    )
}

/// Hydra with *discrete* node rails instead of the aggregate NIC
/// approximation of [`hydra_network`]: `nics` parallel node uplinks at
/// 12.5 GB/s **each**, messages assigned to rails by `policy`.
///
/// Unlike the aggregate model (one fat `nics × 12.5e9` pipe), a single
/// flow here never exceeds one rail's bandwidth, and two flows hashed to
/// the same rail still serialize — the physics behind the paper's Fig. 8
/// second-NIC ablation. At `nics = 1` this is byte-identical to
/// `hydra_network(nodes, 1)`.
pub fn hydra_network_rails(nodes: usize, nics: usize, policy: RailPolicy) -> NetworkModel {
    hydra_network(nodes, 1).with_node_rails(nics, policy)
}

/// LUMI network: `⟦nodes, 2, 4, 2, 8⟧` — dual EPYC 7763, Slingshot-11.
pub fn lumi_network(nodes: usize) -> NetworkModel {
    let h = Hierarchy::new(vec![nodes, 2, 4, 2, 8]).expect("static LUMI hierarchy");
    NetworkModel::new(h, lumi_links(), 25.0e9)
}

/// LUMI with `nics` discrete Slingshot rails per node (25 GB/s each),
/// messages assigned by `policy`. At `nics = 1` this is byte-identical to
/// [`lumi_network`].
pub fn lumi_network_rails(nodes: usize, nics: usize, policy: RailPolicy) -> NetworkModel {
    lumi_network(nodes).with_node_rails(nics, policy)
}

/// One LUMI node's intra-node network: `⟦2, 4, 2, 8⟧` (Fig. 9).
pub fn lumi_node_network() -> NetworkModel {
    let h = Hierarchy::new(vec![2, 4, 2, 8]).expect("static LUMI node hierarchy");
    NetworkModel::new(h, lumi_links()[1..].to_vec(), 25.0e9)
}

fn lumi_links() -> Vec<LinkParams> {
    vec![
        // Node uplink: Slingshot-11, 200 Gb/s.
        LinkParams {
            uplink_bandwidth: 25.0e9,
            crossing_latency: 2.0e-6,
        },
        // Socket uplink: xGMI-2 (4 links ≈ 36 GB/s per direction usable).
        LinkParams {
            uplink_bandwidth: 36.0e9,
            crossing_latency: 0.9e-6,
        },
        // NUMA uplink: on-die infinity fabric slice.
        LinkParams {
            uplink_bandwidth: 50.0e9,
            crossing_latency: 0.5e-6,
        },
        // L3 uplink.
        LinkParams {
            uplink_bandwidth: 60.0e9,
            crossing_latency: 0.35e-6,
        },
        // Core uplink: single-stream copy rate.
        LinkParams {
            uplink_bandwidth: 11.0e9,
            crossing_latency: 0.25e-6,
        },
    ]
}

/// One LUMI node's memory system (Fig. 9's strong-scaling substrate):
/// `⟦2, 4, 2, 8⟧` with per-socket, per-NUMA (2 DDR4-3200 channels each) and
/// per-L3 stream capacities.
pub fn lumi_node_memory() -> MemoryModel {
    let h = Hierarchy::new(vec![2, 4, 2, 8]).expect("static LUMI node hierarchy");
    MemoryModel::new(
        h,
        vec![
            Some(190.0e9), // socket: aggregate of 8 DDR4-3200 channels (derated)
            Some(48.0e9),  // NUMA domain: 2 channels
            Some(70.0e9),  // L3 fill bandwidth
            None,          // core level: covered by the private per-core cap
        ],
        22.0e9, // per-core stream limit
        20.0e9, // ~2.45 GHz × 8 DP flops/cycle, derated
    )
}

/// Hydra node memory system `⟦2, 2, 8⟧` (socket, group, core): 6 channels
/// DDR4-2666 per socket.
pub fn hydra_node_memory() -> MemoryModel {
    let h = Hierarchy::new(vec![2, 2, 8]).expect("static Hydra node hierarchy");
    MemoryModel::new(
        h,
        vec![
            Some(110.0e9), // socket: 6 × DDR4-2666 derated
            Some(60.0e9),  // fake group (mesh slice)
            None,
        ],
        14.0e9,
        15.0e9,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Message;

    #[test]
    fn hydra_levels_match_paper_hierarchy() {
        let net = hydra_network(16, 1);
        assert_eq!(net.hierarchy().levels(), &[16, 2, 2, 8]);
        assert_eq!(net.links().len(), 4);
    }

    #[test]
    fn second_nic_doubles_node_uplink() {
        let one = hydra_network(4, 1);
        let two = hydra_network(4, 2);
        assert_eq!(
            two.links()[0].uplink_bandwidth,
            2.0 * one.links()[0].uplink_bandwidth
        );
    }

    #[test]
    fn railed_presets_match_aggregate_at_one_nic() {
        let agg = hydra_network(4, 1);
        let railed = hydra_network_rails(4, 1, RailPolicy::RoundRobin);
        let m = Message::new(0, 32, 4096);
        assert_eq!(
            agg.message_time(m).to_bits(),
            railed.message_time(m).to_bits()
        );
        let l = lumi_network(4);
        let lr = lumi_network_rails(4, 1, RailPolicy::SrcHash);
        assert_eq!(l.message_time(m).to_bits(), lr.message_time(m).to_bits());
    }

    #[test]
    fn discrete_rails_serialize_same_rail_flows_unlike_the_aggregate() {
        // Two node-crossing flows from different sockets, both round-robin
        // parity 0: the discrete model packs them onto one 12.5 GB/s rail
        // (6.25 GB/s each), while the 2-NIC aggregate model's fat 25 GB/s
        // pipe leaves each flow bound by its 9 GB/s core uplink.
        let agg = hydra_network(4, 2);
        let railed = hydra_network_rails(4, 2, RailPolicy::RoundRobin);
        assert_eq!(railed.rail_counts()[0], 2);
        let msgs = [Message::new(0, 32, 1 << 30), Message::new(16, 48, 1 << 30)];
        let t_agg = agg.round_time(&msgs);
        let t_railed = railed.round_time(&msgs);
        assert!(t_railed > 1.3 * t_agg, "{t_railed} vs {t_agg}");
    }

    #[test]
    fn lumi_levels_match_paper_hierarchy() {
        let net = lumi_network(16);
        assert_eq!(net.hierarchy().levels(), &[16, 2, 4, 2, 8]);
        let node = lumi_node_network();
        assert_eq!(node.hierarchy().levels(), &[2, 4, 2, 8]);
    }

    #[test]
    fn latency_increases_with_level_crossed() {
        let net = lumi_network(4);
        let mut last = f64::INFINITY;
        for p in net.links() {
            assert!(p.crossing_latency < last || p.crossing_latency <= last);
            last = p.crossing_latency;
        }
        // Cross-node messages are the slowest for small payloads.
        let inter = net.message_time(Message::new(0, 128, 8));
        let intra = net.message_time(Message::new(0, 1, 8));
        assert!(inter > intra);
    }

    #[test]
    fn lumi_memory_reproduces_l3_sharing() {
        let mem = lumi_node_memory();
        // 8 cores of one L3 are far slower per-core than 8 cores spread
        // one per L3 of socket 0.
        let packed: Vec<usize> = (0..8).collect();
        let spread: Vec<usize> = (0..8).map(|i| i * 8).collect();
        let t_packed = mem.phase_time(&packed, 1.0e9, 0.0);
        let t_spread = mem.phase_time(&spread, 1.0e9, 0.0);
        assert!(
            t_packed > 1.8 * t_spread,
            "packed {t_packed} vs spread {t_spread}"
        );
    }

    #[test]
    fn lumi_memory_numa_binds_before_socket() {
        let mem = lumi_node_memory();
        // 16 cores of NUMA 0 (its full 2 L3s) vs 16 cores spread two per L3
        // across socket 0.
        let packed: Vec<usize> = (0..16).collect();
        let spread: Vec<usize> = (0..8).flat_map(|l3| [l3 * 8, l3 * 8 + 1]).collect();
        assert!(mem.phase_time(&packed, 1.0e9, 0.0) > mem.phase_time(&spread, 1.0e9, 0.0));
    }
}
