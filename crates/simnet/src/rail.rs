//! Multi-rail fabrics: several parallel uplinks ("rails") per hierarchy
//! instance.
//!
//! The base model gives every instance of level `l` exactly one full-duplex
//! uplink. Real deeply hierarchical machines are multi-rail: Hydra's nodes
//! carry one *or two* Omni-Path NICs (the paper's Fig. 8 second-NIC
//! ablation), and current exascale nodes carry four to six. A rail is an
//! independent directed link pair of the *per-rail* bandwidth; a crossing
//! message is bound to exactly one rail per traversed level by a
//! [`RailPolicy`], and only messages on the same rail contend.
//!
//! This differs from the aggregate approximation
//! ([`NetworkModel::with_node_uplink_scale`](crate::NetworkModel::with_node_uplink_scale),
//! `hydra_network(nodes, 2)`), which multiplies one link's bandwidth: with
//! real rails a single flow never exceeds one NIC's bandwidth, and two
//! flows hashed onto the same rail still serialize — exactly the effects
//! that flip packed-vs-spread winners with the NIC count.
//!
//! Every policy is a **pure function of the endpoints and the level
//! geometry** — no round index, no arrival order, no randomness. That is
//! what keeps the subsystem composable with the rest of the stack:
//!
//! * path interning (`(src, dst) → links`) stays valid across rounds and
//!   runs ([`crate::FluidSim`]'s memoized paths, [`crate::CostCache`]'s
//!   endpoint-keyed profiles);
//! * rail assignment is deterministic across threads (property-tested);
//! * the admissible bounds of [`crate::bound`] can count distinct
//!   `(instance, rail)` links without simulating anything.
//!
//! With every level at one rail (the default), assignment is constantly
//! rail 0 and the whole subsystem vanishes: link tables, water-fills and
//! costs are **byte-identical** to the single-rail engine (property-tested
//! with the pre-rail solver as oracle).

use std::fmt;

/// How a crossing message picks its rail at each traversed level.
///
/// `side` below is the core whose uplink the message occupies — the
/// *sender* in the up direction, the *receiver* coming down — and `peer`
/// is the other endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RailPolicy {
    /// `(src + dst) mod rails`: pairs cycle through the rails, so the
    /// rounds of a pairwise exchange naturally alternate rails. Symmetric
    /// (both directions of a pair ride the same rail index).
    #[default]
    RoundRobin,
    /// Hash of the owning side's core id: every core keeps all its traffic
    /// on one rail per level — the static NIC binding of rail-bound MPI
    /// launch configurations.
    SrcHash,
    /// Rail → core affinity: the instance's cores are split into `rails`
    /// contiguous blocks and each block is bound to its own rail (the
    /// "closest NIC" binding of multi-rail nodes, where each socket or
    /// NUMA domain owns the adapter on its bus).
    Affinity,
}

impl RailPolicy {
    /// Short lowercase label (`round-robin`, `src-hash`, `affinity`).
    pub fn label(self) -> &'static str {
        match self {
            RailPolicy::RoundRobin => "round-robin",
            RailPolicy::SrcHash => "src-hash",
            RailPolicy::Affinity => "affinity",
        }
    }

    /// Parses a label as produced by [`label`](Self::label) (CLI flag
    /// spelling).
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "round-robin" | "rr" => Some(RailPolicy::RoundRobin),
            "src-hash" | "hash" => Some(RailPolicy::SrcHash),
            "affinity" | "aff" => Some(RailPolicy::Affinity),
            _ => None,
        }
    }

    /// All policies, for sweeps and property tests.
    pub const ALL: [RailPolicy; 3] = [
        RailPolicy::RoundRobin,
        RailPolicy::SrcHash,
        RailPolicy::Affinity,
    ];
}

impl fmt::Display for RailPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// SplitMix64 — a fixed-key avalanche hash, so [`RailPolicy::SrcHash`] is
/// reproducible across processes and toolchains (unlike `DefaultHasher`,
/// whose keys are an implementation detail).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The rail a message occupies on one directed uplink: `side` owns the
/// link (sender going up, receiver coming down), `peer` is the other
/// endpoint, `stride` is the level's subtree size (cores per instance).
///
/// Pure in all arguments; returns 0 whenever `rails <= 1`.
#[inline]
pub fn assign_rail(
    policy: RailPolicy,
    rails: usize,
    stride: usize,
    side: usize,
    peer: usize,
) -> usize {
    if rails <= 1 {
        return 0;
    }
    match policy {
        RailPolicy::RoundRobin => (side + peer) % rails,
        RailPolicy::SrcHash => (splitmix64(side as u64) % rails as u64) as usize,
        RailPolicy::Affinity => (side % stride) * rails / stride,
    }
}

/// The rail-aware directed-link table: the level-major interning of the
/// fluid engine extended with a rail axis.
///
/// Link ids stay pure arithmetic:
/// `id = level_offset[level] + (2·instance + up)·rails[level] + rail`,
/// outer levels first — so the shared (and now per-rail) node links all
/// sit in the same dense cache-hot prefix the single-rail table had, and
/// with every `rails[level] = 1` the ids are **bit-identical** to the
/// pre-rail layout.
#[derive(Debug, Clone)]
pub struct RailLinkTable {
    strides: Vec<usize>,
    rails: Vec<usize>,
    policy: RailPolicy,
    level_offset: Vec<u32>,
    num_links: usize,
}

impl RailLinkTable {
    /// Builds the table for a machine of `size` cores with per-level
    /// subtree sizes `strides` and rail counts `rails`.
    pub fn new(size: usize, strides: &[usize], rails: &[usize], policy: RailPolicy) -> Self {
        assert_eq!(strides.len(), rails.len(), "one rail count per level");
        let mut level_offset = Vec::with_capacity(strides.len());
        let mut total = 0usize;
        for (level, &stride) in strides.iter().enumerate() {
            level_offset.push(total as u32);
            total += 2 * (size / stride) * rails[level];
        }
        Self {
            strides: strides.to_vec(),
            rails: rails.to_vec(),
            policy,
            level_offset,
            num_links: total,
        }
    }

    /// Total number of directed rail-links.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Per-level rail counts.
    pub fn rails(&self) -> &[usize] {
        &self.rails
    }

    /// The assignment policy.
    pub fn policy(&self) -> RailPolicy {
        self.policy
    }

    /// First link id of `level` (level-major layout).
    pub fn level_offset(&self, level: usize) -> u32 {
        self.level_offset[level]
    }

    /// The id of the directed rail-link `(level, instance, up, rail)`.
    #[inline]
    pub fn link_id(&self, level: usize, instance: usize, up: bool, rail: usize) -> u32 {
        debug_assert!(rail < self.rails[level]);
        self.level_offset[level] + ((2 * instance + up as usize) * self.rails[level] + rail) as u32
    }

    /// The directed rail-link a `src → dst` message occupies at `level`
    /// in the given direction (up = sender-side uplink).
    #[inline]
    pub fn message_link(&self, level: usize, src: usize, dst: usize, up: bool) -> u32 {
        let (side, peer) = if up { (src, dst) } else { (dst, src) };
        let stride = self.strides[level];
        let rail = assign_rail(self.policy, self.rails[level], stride, side, peer);
        self.link_id(level, side / stride, up, rail)
    }

    /// Decodes a link id back into `(level, instance, up, rail)` — for
    /// labels and diagnostics, not hot paths.
    pub fn decode(&self, id: u32) -> (usize, usize, bool, usize) {
        let level = match self.level_offset.partition_point(|&off| off <= id) {
            0 => 0,
            n => n - 1,
        };
        let local = (id - self.level_offset[level]) as usize;
        let rails = self.rails[level];
        let rail = local % rails;
        let slot = local / rails;
        (level, slot / 2, slot % 2 == 1, rail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rail_is_always_rail_zero() {
        for policy in RailPolicy::ALL {
            for side in 0..64 {
                assert_eq!(assign_rail(policy, 1, 8, side, side + 1), 0);
            }
        }
    }

    #[test]
    fn round_robin_alternates_with_the_pair() {
        // Consecutive peers of one sender cycle through the rails.
        let rails = 2;
        let a = assign_rail(RailPolicy::RoundRobin, rails, 8, 0, 9);
        let b = assign_rail(RailPolicy::RoundRobin, rails, 8, 0, 10);
        assert_ne!(a, b);
        // Symmetric: both directions of a pair share the rail index.
        assert_eq!(
            assign_rail(RailPolicy::RoundRobin, rails, 8, 0, 9),
            assign_rail(RailPolicy::RoundRobin, rails, 8, 9, 0),
        );
    }

    #[test]
    fn src_hash_depends_only_on_the_side() {
        for peer in [1, 5, 100] {
            assert_eq!(
                assign_rail(RailPolicy::SrcHash, 4, 8, 42, peer),
                assign_rail(RailPolicy::SrcHash, 4, 8, 42, 7),
            );
        }
    }

    #[test]
    fn affinity_binds_contiguous_core_blocks() {
        // 8 cores per instance, 2 rails: cores 0..4 on rail 0, 4..8 on 1.
        for core in 0..8 {
            let rail = assign_rail(RailPolicy::Affinity, 2, 8, core, 100);
            assert_eq!(rail, if core % 8 < 4 { 0 } else { 1 }, "core {core}");
        }
        // Every rail gets at least one block when rails divide the stride.
        let hit: std::collections::HashSet<usize> = (0..8)
            .map(|c| assign_rail(RailPolicy::Affinity, 4, 8, c, 0))
            .collect();
        assert_eq!(hit.len(), 4);
    }

    #[test]
    fn assignment_is_in_range() {
        for policy in RailPolicy::ALL {
            for rails in 1..=4 {
                for side in 0..64 {
                    for peer in 0..64 {
                        let r = assign_rail(policy, rails, 16, side, peer);
                        assert!(r < rails);
                    }
                }
            }
        }
    }

    #[test]
    fn table_ids_match_single_rail_layout_at_one_rail() {
        // ⟦2, 2, 4⟧: strides [8, 4, 1].
        let strides = vec![8, 4, 1];
        let table = RailLinkTable::new(16, &strides, &[1, 1, 1], RailPolicy::RoundRobin);
        // The pre-rail layout: id = level_offset + 2·instance + up.
        let mut expect = 0u32;
        for (level, &stride) in strides.iter().enumerate() {
            for instance in 0..16 / stride {
                for up in [false, true] {
                    assert_eq!(table.link_id(level, instance, up, 0), expect);
                    expect += 1;
                }
            }
        }
        assert_eq!(table.num_links(), expect as usize);
    }

    #[test]
    fn table_decode_roundtrips() {
        let table = RailLinkTable::new(16, &[8, 4, 1], &[2, 1, 3], RailPolicy::Affinity);
        for level in 0..3 {
            let stride = [8, 4, 1][level];
            for instance in 0..16 / stride {
                for up in [false, true] {
                    for rail in 0..table.rails()[level] {
                        let id = table.link_id(level, instance, up, rail);
                        assert!((id as usize) < table.num_links());
                        assert_eq!(table.decode(id), (level, instance, up, rail));
                    }
                }
            }
        }
    }

    #[test]
    fn message_link_uses_src_up_dst_down() {
        let table = RailLinkTable::new(16, &[8, 4, 1], &[2, 2, 2], RailPolicy::Affinity);
        // src 1 (node 0, offset 1 → rail 0 up), dst 12 (node 1, offset 4
        // → rail 1 down) at the node level.
        let up = table.decode(table.message_link(0, 1, 12, true));
        let down = table.decode(table.message_link(0, 1, 12, false));
        assert_eq!(up, (0, 0, true, 0));
        assert_eq!(down, (0, 1, false, 1));
    }

    #[test]
    fn policy_labels_roundtrip() {
        for p in RailPolicy::ALL {
            assert_eq!(RailPolicy::parse(p.label()), Some(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(RailPolicy::parse("rr"), Some(RailPolicy::RoundRobin));
        assert_eq!(RailPolicy::parse("nope"), None);
    }
}
