//! Admissible lower bounds on schedule cost — the pruning oracle of the
//! branch-and-bound order search.
//!
//! Costing a round exactly means solving max-min water-filling over every
//! traversed directed link. This module computes something far cheaper
//! that is **provably never above** the exact cost, so a search can skip
//! any candidate whose bound already exceeds the incumbent best without
//! risking the optimum (DESIGN.md §7e gives the derivation):
//!
//! * **Aggregate-capacity term.** Every message whose endpoints first
//!   differ at level `j` pushes its bytes through exactly one *up*-direction
//!   uplink and one *down*-direction uplink of every level `l ≥ j`. The
//!   flows sharing the round's active level-`l` links can jointly drain at
//!   most `active_links · bandwidth_l` bytes per second, so the round lasts
//!   at least `min_latency + bytes_through(l) / (active_links · bandwidth_l)`.
//! * **Latency term.** The round time is a max of per-message
//!   `latency + bytes/rate`, so it is at least the largest crossing
//!   latency present — summing that over rounds gives the
//!   latency-weighted round count of the schedule.
//! * **Local-copy term.** A self-message drains at the local-copy
//!   bandwidth, so the round lasts at least its largest local payload
//!   divided by that bandwidth.
//!
//! All three hold for both contention modes (no flow is ever allocated
//! more than any traversed link's capacity, and link rate sums never
//! exceed capacity), hence `schedule_lower_bound ≤ schedule_time` always —
//! property-tested against every collective generator in
//! `tests/proptests.rs` at 1e-12 relative tolerance.
//!
//! On multi-rail fabrics the aggregate term is refined **per rail**: the
//! [`RailPolicy`](crate::rail::RailPolicy) is a pure function of message
//! endpoints, so each byte's rail is known before any costing, and the
//! bytes assigned to rail `r` of level `l` in one direction can jointly
//! drain through at most that rail's active links. The level term becomes
//! the *max over (direction, rail)* of `rail_bytes / (rail_active ·
//! bandwidth)`, which dominates the pooled
//! `total / (min_active_direction · bandwidth)` by the mediant inequality
//! (a max of fractions is never below the fraction of the sums) while
//! remaining admissible by the same measure argument applied rail by
//! rail. The pooled arithmetic survives as
//! [`NetworkModel::round_lower_bound_aggregate_from`] — the cheap first
//! rung of the search's bound ladder (DESIGN.md §7g). On single-rail
//! fabrics the two are byte-identical.
//!
//! The per-level totals live in a [`RoundLoad`], built in one pass over a
//! round's messages; evaluating a bound from a load is O(levels · rails),
//! so a search that keeps loads around re-bounds without touching the
//! messages again.

use crate::network::NetworkModel;
use crate::schedule::{Message, Schedule};

/// Per-level byte totals and activity of one round — everything a bound
/// evaluation needs, in O(levels) space.
///
/// Built by [`NetworkModel::round_load`]; `bytes_through[l]` aggregates the
/// payloads of all messages whose path traverses level `l` (equivalently:
/// whose crossing level is `≤ l`), which is the same total for the up and
/// the down direction.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundLoad {
    /// Total payload bytes traversing level-`l` uplinks (per direction).
    pub bytes_through: Vec<u64>,
    /// Distinct up-direction (sender-side) level-`l` links carrying traffic.
    /// On multi-rail fabrics each active *(instance, rail)* pair counts —
    /// every rail is an independent drain at the per-rail bandwidth.
    pub active_up: Vec<usize>,
    /// Distinct down-direction (receiver-side) level-`l` links carrying
    /// traffic (per *(instance, rail)*, like `active_up`).
    pub active_down: Vec<usize>,
    /// Smallest crossing latency among the messages contributing to level
    /// `l` (`0` when none do).
    pub min_latency_through: Vec<f64>,
    /// Largest crossing latency of any message in the round (`0` when no
    /// message crosses a level).
    pub max_latency: f64,
    /// Largest self-message payload in the round (local copies bypass the
    /// link fabric but still take `bytes / local_copy_bandwidth`).
    pub max_local_bytes: u64,
    /// Per-(level, rail) byte histogram of the **up** (sender-side)
    /// direction: `rail_bytes_up[l][r]` totals the payloads the active
    /// [`RailPolicy`](crate::rail::RailPolicy) assigns to rail `r` of
    /// level `l`. Rows sum to `bytes_through[l]`; single-rail levels have
    /// one column equal to the aggregate.
    pub rail_bytes_up: Vec<Vec<u64>>,
    /// Per-(level, rail) byte histogram of the **down** (receiver-side)
    /// direction (rows also sum to `bytes_through[l]`).
    pub rail_bytes_down: Vec<Vec<u64>>,
    /// Distinct up-direction instances active on each (level, rail):
    /// `rail_active_up[l]` sums to `active_up[l]` across rails.
    pub rail_active_up: Vec<Vec<usize>>,
    /// Distinct down-direction instances active on each (level, rail)
    /// (sums to `active_down[l]` across rails).
    pub rail_active_down: Vec<Vec<usize>>,
}

impl RoundLoad {
    /// An empty load for a machine whose level `l` has `rails[l]` rails —
    /// the reusable counterpart of the internal constructor, for callers
    /// that keep one load around and [`reset`](Self::reset) it per round.
    pub fn for_rails(rails: &[usize]) -> Self {
        Self::empty(rails)
    }

    /// Zeroes the load for a machine whose level `l` has `rails[l]` rails,
    /// **keeping every buffer's allocation** when the shape is unchanged.
    /// `reset` + accumulate produces exactly the state a fresh
    /// [`for_rails`](Self::for_rails) load would reach, so reusing one load
    /// across rounds is bit-identical to building fresh ones.
    pub fn reset(&mut self, rails: &[usize]) {
        let depth = rails.len();
        fn reset_rows<T: Copy>(rows: &mut Vec<Vec<T>>, rails: &[usize], zero: T) {
            rows.resize_with(rails.len(), Vec::new);
            for (row, &r) in rows.iter_mut().zip(rails) {
                row.clear();
                row.resize(r.max(1), zero);
            }
        }
        self.bytes_through.clear();
        self.bytes_through.resize(depth, 0);
        self.active_up.clear();
        self.active_up.resize(depth, 0);
        self.active_down.clear();
        self.active_down.resize(depth, 0);
        self.min_latency_through.clear();
        self.min_latency_through.resize(depth, 0.0);
        self.max_latency = 0.0;
        self.max_local_bytes = 0;
        reset_rows(&mut self.rail_bytes_up, rails, 0);
        reset_rows(&mut self.rail_bytes_down, rails, 0);
        reset_rows(&mut self.rail_active_up, rails, 0);
        reset_rows(&mut self.rail_active_down, rails, 0);
    }

    /// An empty load for a machine whose level `l` has `rails[l]` rails.
    fn empty(rails: &[usize]) -> Self {
        let depth = rails.len();
        let histogram =
            |fill| -> Vec<Vec<u64>> { rails.iter().map(|&r| vec![fill; r.max(1)]).collect() };
        let counts = || -> Vec<Vec<usize>> { rails.iter().map(|&r| vec![0; r.max(1)]).collect() };
        Self {
            bytes_through: vec![0; depth],
            active_up: vec![0; depth],
            active_down: vec![0; depth],
            min_latency_through: vec![0.0; depth],
            max_latency: 0.0,
            max_local_bytes: 0,
            rail_bytes_up: histogram(0),
            rail_bytes_down: histogram(0),
            rail_active_up: counts(),
            rail_active_down: counts(),
        }
    }
}

impl NetworkModel {
    /// Aggregates one round of messages into a [`RoundLoad`] (one pass over
    /// the messages; bounds evaluated from the load are O(levels)).
    pub fn round_load(&self, messages: &[Message]) -> RoundLoad {
        let mut load = RoundLoad::empty(self.rail_counts());
        let mut seen = std::collections::HashSet::new();
        self.round_load_into(messages, &mut load, &mut seen);
        load
    }

    /// [`round_load`](Self::round_load) into caller-owned storage: `load`
    /// is [`reset`](RoundLoad::reset) and `seen` cleared first, so reusing
    /// them across rounds allocates nothing once warm and accumulates
    /// exactly what a fresh load would.
    pub fn round_load_into(
        &self,
        messages: &[Message],
        load: &mut RoundLoad,
        seen: &mut std::collections::HashSet<(usize, usize, bool, usize)>,
    ) {
        let strides = self.hierarchy().strides();
        let k = strides.len();
        let links = self.links();
        load.reset(self.rail_counts());
        seen.clear();
        for m in messages {
            if m.src == m.dst {
                load.max_local_bytes = load.max_local_bytes.max(m.bytes);
                continue;
            }
            let j = strides
                .iter()
                .position(|&s| m.src / s != m.dst / s)
                .expect("distinct cores differ at some level");
            let latency = links[j].crossing_latency;
            load.max_latency = load.max_latency.max(latency);
            for (level, &stride) in strides.iter().enumerate().take(k).skip(j) {
                load.bytes_through[level] += m.bytes;
                // Distinct (instance, rail) pairs: on a multi-rail fabric
                // each rail of a NIC drains independently at the per-rail
                // bandwidth, so activity is counted per rail. Single-rail
                // models always yield rail 0, keeping the counts (and the
                // bound) byte-identical to the pre-rail engine.
                let up_rail = self.message_rail(level, m.src, m.dst, true);
                load.rail_bytes_up[level][up_rail] += m.bytes;
                if seen.insert((level, m.src / stride, true, up_rail)) {
                    load.active_up[level] += 1;
                    load.rail_active_up[level][up_rail] += 1;
                }
                let down_rail = self.message_rail(level, m.src, m.dst, false);
                load.rail_bytes_down[level][down_rail] += m.bytes;
                if seen.insert((level, m.dst / stride, false, down_rail)) {
                    load.active_down[level] += 1;
                    load.rail_active_down[level][down_rail] += 1;
                }
                let entry = &mut load.min_latency_through[level];
                if load.bytes_through[level] == m.bytes {
                    *entry = latency;
                } else {
                    *entry = entry.min(latency);
                }
            }
        }
    }

    /// Admissible lower bound on [`round_time`](Self::round_time) from a
    /// precomputed [`RoundLoad`] — O(levels · rails).
    ///
    /// The level term is the max over (direction, rail) of
    /// `rail_bytes / (rail_active · bandwidth)`: the bytes the rail policy
    /// pins to one rail of one direction can jointly drain at most through
    /// that rail's active links, so every such fraction lower-bounds the
    /// round. This **dominates** the pooled aggregate term of
    /// [`round_lower_bound_aggregate_from`](Self::round_lower_bound_aggregate_from)
    /// — `max_r (bytes_r / cap_r) ≥ (Σ bytes_r) / (Σ cap_r)` for any
    /// positive capacities (mediant inequality) — and degenerates to it
    /// byte-identically on single-rail fabrics, where each direction has
    /// exactly one fraction and the max over directions reproduces the
    /// divide-by-min-active arithmetic.
    pub fn round_lower_bound_from(&self, load: &RoundLoad) -> f64 {
        let links = self.links();
        let mut t = load.max_latency;
        if load.max_local_bytes > 0 {
            t = t.max(load.max_local_bytes as f64 / self.local_copy_bandwidth());
        }
        for (l, link) in links.iter().enumerate() {
            if load.bytes_through[l] == 0 {
                continue;
            }
            let mut level_term: f64 = 0.0;
            for (rail_bytes, rail_active) in [
                (&load.rail_bytes_up[l], &load.rail_active_up[l]),
                (&load.rail_bytes_down[l], &load.rail_active_down[l]),
            ] {
                for (r, &bytes) in rail_bytes.iter().enumerate() {
                    if bytes == 0 {
                        continue;
                    }
                    let active = rail_active[r].max(1) as f64;
                    level_term = level_term.max(bytes as f64 / (active * link.uplink_bandwidth));
                }
            }
            t = t.max(load.min_latency_through[l] + level_term);
        }
        t
    }

    /// The pre-rail **aggregate** lower bound from a precomputed
    /// [`RoundLoad`] — per-level byte totals divided by the pooled
    /// capacity of the direction with fewer active links. Strictly no
    /// tighter than [`round_lower_bound_from`](Self::round_lower_bound_from)
    /// (and equal on single-rail fabrics), but cheaper to evaluate —
    /// O(levels) — which makes it the first rung of the search's bound
    /// ladder: candidates it already prunes never pay the per-rail
    /// histogram walk.
    pub fn round_lower_bound_aggregate_from(&self, load: &RoundLoad) -> f64 {
        let links = self.links();
        let mut t = load.max_latency;
        if load.max_local_bytes > 0 {
            t = t.max(load.max_local_bytes as f64 / self.local_copy_bandwidth());
        }
        for (l, link) in links.iter().enumerate() {
            if load.bytes_through[l] == 0 {
                continue;
            }
            // Either direction caps the round; the one with fewer active
            // links gives the tighter (still admissible) bound.
            let active = load.active_up[l].min(load.active_down[l]).max(1) as f64;
            let bound = load.min_latency_through[l]
                + load.bytes_through[l] as f64 / (active * link.uplink_bandwidth);
            t = t.max(bound);
        }
        t
    }

    /// Admissible lower bound on [`round_time`](Self::round_time).
    ///
    /// Accumulates into the thread-local [`RoundWorkspace`]'s load instead
    /// of allocating one per call (bit-identical — see
    /// [`RoundLoad::reset`]).
    ///
    /// [`RoundWorkspace`]: crate::workspace::RoundWorkspace
    pub fn round_lower_bound(&self, messages: &[Message]) -> f64 {
        crate::workspace::with_thread_local(|ws| {
            let crate::workspace::RoundWorkspace { load, seen, .. } = ws;
            let load = load.get_or_insert_with(|| RoundLoad::for_rails(self.rail_counts()));
            self.round_load_into(messages, load, seen);
            self.round_lower_bound_from(load)
        })
    }

    /// Aggregate-capacity lower bound on [`round_time`](Self::round_time)
    /// (the cheap rung — see
    /// [`round_lower_bound_aggregate_from`](Self::round_lower_bound_aggregate_from)).
    pub fn round_lower_bound_aggregate(&self, messages: &[Message]) -> f64 {
        crate::workspace::with_thread_local(|ws| {
            let crate::workspace::RoundWorkspace { load, seen, .. } = ws;
            let load = load.get_or_insert_with(|| RoundLoad::for_rails(self.rail_counts()));
            self.round_load_into(messages, load, seen);
            self.round_lower_bound_aggregate_from(load)
        })
    }

    /// Per-round [`RoundLoad`]s of a schedule, for bound evaluations that
    /// want to stay O(levels) per round across repeated calls.
    pub fn schedule_loads(&self, schedule: &Schedule) -> Vec<RoundLoad> {
        schedule
            .rounds
            .iter()
            .map(|r| self.round_load(&r.messages))
            .collect()
    }

    /// Admissible lower bound on [`schedule_time`](Self::schedule_time):
    /// the sum of per-round bounds (rounds are barrier-synchronized, so
    /// per-round lower bounds add).
    ///
    /// Repeated rounds — ring and pairwise collectives re-issue the same
    /// message set every round — are aggregated once: equal rounds share a
    /// load, so the bound costs O(distinct rounds · messages), mirroring
    /// the pattern memoization the exact [`CostCache`](crate::CostCache)
    /// path enjoys. Hash matches are verified by full equality before
    /// reuse, so a collision can never substitute a wrong (inadmissible)
    /// bound.
    pub fn schedule_lower_bound(&self, schedule: &Schedule) -> f64 {
        self.schedule_bound_by(schedule, |msgs| self.round_lower_bound(msgs))
    }

    /// [`schedule_lower_bound`](Self::schedule_lower_bound) built from the
    /// cheap aggregate round term instead of the per-rail histogram — the
    /// first rung of the bound ladder. Still admissible (it is a max of
    /// strictly weaker per-round terms); equal to the full bound on
    /// single-rail fabrics.
    pub fn schedule_lower_bound_aggregate(&self, schedule: &Schedule) -> f64 {
        self.schedule_bound_by(schedule, |msgs| self.round_lower_bound_aggregate(msgs))
    }

    /// Shared round-memoized sum driving both schedule bounds: equal
    /// rounds (ring and pairwise collectives re-issue the same message
    /// set every round) are bounded once. Hash matches are verified by
    /// full equality before reuse, so a collision can never substitute a
    /// wrong (inadmissible) bound.
    fn schedule_bound_by(
        &self,
        schedule: &Schedule,
        round_bound: impl Fn(&[Message]) -> f64,
    ) -> f64 {
        use std::collections::HashMap;
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut memo: HashMap<u64, Vec<(&[Message], f64)>> = HashMap::new();
        schedule
            .rounds
            .iter()
            .map(|r| {
                let mut h = DefaultHasher::new();
                for m in &r.messages {
                    (m.src, m.dst, m.bytes).hash(&mut h);
                }
                let bucket = memo.entry(h.finish()).or_default();
                if let Some((_, t)) = bucket
                    .iter()
                    .find(|(msgs, _)| *msgs == r.messages.as_slice())
                {
                    return *t;
                }
                let t = round_bound(&r.messages);
                bucket.push((r.messages.as_slice(), t));
                t
            })
            .sum()
    }
}

/// Free-function spelling of
/// [`NetworkModel::schedule_lower_bound`]: a cheap, provably admissible
/// lower bound on `net.schedule_time(schedule)`.
pub fn schedule_lower_bound(net: &NetworkModel, schedule: &Schedule) -> f64 {
    net.schedule_lower_bound(schedule)
}

/// Free-function spelling of
/// [`NetworkModel::schedule_lower_bound_aggregate`]: the cheap
/// aggregate-capacity rung of the bound ladder.
pub fn schedule_lower_bound_aggregate(net: &NetworkModel, schedule: &Schedule) -> f64 {
    net.schedule_lower_bound_aggregate(schedule)
}

/// Admissible lower bound on [`fluid_time`](crate::fluid::fluid_time) of
/// `schedules` executing concurrently — the pruning oracle of fluid-costed
/// order sweeps.
///
/// The fluid execution has no cross-job barriers, so per-round bounds of
/// different jobs do **not** add; two terms survive:
///
/// * **Per-job term.** Contention never accelerates a job, so the fluid
///   makespan is at least each job's isolated cost, and
///   [`schedule_lower_bound`] bounds that from below — take the max over
///   jobs.
/// * **Aggregate term.** Pool *every* message of *every* job into one
///   virtual round and evaluate the per-level capacity bound on it: all
///   bytes that must traverse level `l` drain through the union of active
///   level-`l` links at a joint rate of at most `active · bandwidth_l`,
///   regardless of when their rounds start, and no byte crosses `l`
///   before the smallest crossing latency of any message through `l`.
///   The latency-max and local-copy terms of
///   [`round_lower_bound_from`](NetworkModel::round_lower_bound_from)
///   remain valid verbatim (some message must wait its full latency; some
///   core must push its largest local copy).
///
/// This is necessarily looser than [`schedule_lower_bound`] on a single
/// schedule (it forgets round barriers), but it is valid for the
/// barrier-free execution, where the per-round sum is **not** — fluid
/// overlap can beat it. Property-tested against every collective
/// generator under both contention modes in `tests/proptests.rs`.
pub fn fluid_lower_bound(net: &NetworkModel, schedules: &[Schedule]) -> f64 {
    let per_job = schedules
        .iter()
        .map(|s| net.schedule_lower_bound(s))
        .fold(0.0, f64::max);
    let all: Vec<Message> = pooled_messages(schedules);
    let aggregate = net.round_lower_bound_from(&net.round_load(&all));
    per_job.max(aggregate)
}

/// [`fluid_lower_bound`] built from the cheap aggregate round term — the
/// fluid counterpart of
/// [`NetworkModel::schedule_lower_bound_aggregate`], and the first rung
/// of the fluid bound ladder. Admissible by the same argument (every term
/// is weakened, never strengthened); equal to [`fluid_lower_bound`] on
/// single-rail fabrics.
pub fn fluid_lower_bound_aggregate(net: &NetworkModel, schedules: &[Schedule]) -> f64 {
    let per_job = schedules
        .iter()
        .map(|s| net.schedule_lower_bound_aggregate(s))
        .fold(0.0, f64::max);
    let all: Vec<Message> = pooled_messages(schedules);
    let aggregate = net.round_lower_bound_aggregate_from(&net.round_load(&all));
    per_job.max(aggregate)
}

/// Every message of every round of every schedule, as one virtual round.
fn pooled_messages(schedules: &[Schedule]) -> Vec<Message> {
    schedules
        .iter()
        .flat_map(|s| s.rounds.iter())
        .flat_map(|r| r.messages.iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ContentionMode, LinkParams};
    use crate::schedule::Round;
    use mre_core::Hierarchy;

    /// Two nodes × two sockets × four cores; NIC 10 B/s, socket 40 B/s,
    /// core 100 B/s.
    fn toy() -> NetworkModel {
        let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
        NetworkModel::new(
            h,
            vec![
                LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 2.0,
                },
                LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1.0,
                },
                LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 0.5,
                },
            ],
            1000.0,
        )
    }

    #[test]
    fn load_aggregates_per_level() {
        let net = toy();
        // One node-crossing and one same-socket message plus a local copy.
        let load = net.round_load(&[
            Message::new(0, 8, 100),
            Message::new(2, 3, 40),
            Message::new(5, 5, 70),
        ]);
        assert_eq!(load.bytes_through, vec![100, 100, 140]);
        // Node level: 1 sender-side and 1 receiver-side NIC active.
        assert_eq!(load.active_up[0], 1);
        assert_eq!(load.active_down[0], 1);
        // Core level: two distinct senders and two distinct receivers.
        assert_eq!(load.active_up[2], 2);
        assert_eq!(load.active_down[2], 2);
        assert_eq!(load.max_latency, 2.0);
        assert_eq!(load.min_latency_through[0], 2.0);
        assert_eq!(load.min_latency_through[2], 0.5);
        assert_eq!(load.max_local_bytes, 70);
    }

    #[test]
    fn bound_is_exact_for_a_single_message() {
        let net = toy();
        // One isolated cross-node message: bound = latency + bytes/NIC,
        // which is also the exact time.
        let m = [Message::new(0, 8, 100)];
        let lb = net.round_lower_bound(&m);
        assert!((lb - net.round_time(&m)).abs() < 1e-12, "{lb}");
    }

    #[test]
    fn bound_sees_shared_nic_aggregate() {
        let net = toy();
        // Two cross-node flows out of the same node: one active up NIC, so
        // the aggregate term is 2 + 200/10 = 22 — the exact contended time.
        let m = [Message::new(0, 8, 100), Message::new(1, 9, 100)];
        let lb = net.round_lower_bound(&m);
        let t = net.round_time(&m);
        assert!((lb - 22.0).abs() < 1e-12, "{lb}");
        assert!(lb <= t * (1.0 + 1e-12), "{lb} vs {t}");
    }

    #[test]
    fn bound_never_exceeds_time_under_either_mode() {
        let fair = toy();
        let naive = toy().with_contention_mode(ContentionMode::EqualShare);
        let rounds = [
            vec![Message::new(0, 1, 100)],
            vec![Message::new(0, 8, 100), Message::new(1, 9, 50)],
            vec![
                Message::new(0, 4, 1000),
                Message::new(0, 8, 1000),
                Message::new(2, 10, 1000),
                Message::new(3, 3, 5000),
            ],
        ];
        for msgs in &rounds {
            for net in [&fair, &naive] {
                let lb = net.round_lower_bound(msgs);
                let t = net.round_time(msgs);
                assert!(lb <= t * (1.0 + 1e-12), "bound {lb} vs time {t}");
                assert!(lb > 0.0);
            }
        }
    }

    #[test]
    fn schedule_bound_sums_rounds_and_stays_below_time() {
        let net = toy();
        let s = Schedule::with(vec![
            Round::with(vec![Message::new(0, 8, 100), Message::new(1, 9, 100)]),
            Round::with(vec![Message::new(0, 1, 100)]),
            Round::new(),
        ]);
        let lb = net.schedule_lower_bound(&s);
        let t = net.schedule_time(&s);
        assert!(lb <= t * (1.0 + 1e-12), "{lb} vs {t}");
        // The empty round contributes nothing.
        assert_eq!(net.round_lower_bound(&[]), 0.0);
        // Free function agrees with the method.
        assert_eq!(schedule_lower_bound(&net, &s), lb);
        // Per-round loads expose the O(levels) path.
        let loads = net.schedule_loads(&s);
        let from_loads: f64 = loads.iter().map(|l| net.round_lower_bound_from(l)).sum();
        assert_eq!(from_loads, lb);
    }

    #[test]
    fn railed_load_counts_per_rail_activity() {
        use crate::rail::RailPolicy;
        let net = toy().with_node_rails(2, RailPolicy::RoundRobin);
        // 0→8 rides node rail (0+8)%2 = 0, 1→9 rides (1+9)%2 = 0 too — but
        // they leave from the *same* node instance, so with round-robin on
        // distinct (src+dst) parities 0→8 and 1→8 split onto rails 0 and 1.
        let load = net.round_load(&[Message::new(0, 8, 100), Message::new(1, 8, 100)]);
        assert_eq!(load.active_up[0], 2, "two rails of one NIC active");
        assert_eq!(load.active_down[0], 2);
        // Same-rail flows still collapse to one active drain.
        let load = net.round_load(&[Message::new(0, 8, 100), Message::new(2, 10, 100)]);
        assert_eq!(load.active_up[0], 1, "both on rail 0 of the same NIC");
    }

    #[test]
    fn railed_bound_stays_admissible_and_single_rail_is_identical() {
        use crate::rail::RailPolicy;
        let plain = toy();
        let msgs = vec![
            Message::new(0, 8, 100),
            Message::new(1, 8, 100),
            Message::new(2, 10, 50),
            Message::new(4, 12, 70),
            Message::new(3, 3, 900),
        ];
        for policy in RailPolicy::ALL {
            let one = toy().with_node_rails(1, policy);
            assert_eq!(
                plain.round_lower_bound(&msgs).to_bits(),
                one.round_lower_bound(&msgs).to_bits(),
                "single-rail bound must be byte-identical"
            );
            assert_eq!(
                one.round_lower_bound(&msgs).to_bits(),
                one.round_lower_bound_aggregate(&msgs).to_bits(),
                "on one rail the per-rail and aggregate bounds coincide"
            );
            for nics in [2, 3] {
                let railed = toy().with_node_rails(nics, policy);
                for net in [
                    railed.clone(),
                    railed.with_contention_mode(ContentionMode::EqualShare),
                ] {
                    let lb = net.round_lower_bound(&msgs);
                    let agg = net.round_lower_bound_aggregate(&msgs);
                    let t = net.round_time(&msgs);
                    assert!(lb <= t * (1.0 + 1e-12), "{policy} x{nics}: {lb} vs {t}");
                    assert!(agg <= lb * (1.0 + 1e-12), "{policy} x{nics}: {agg} vs {lb}");
                }
            }
        }
    }

    #[test]
    fn rail_histograms_partition_the_level_totals() {
        use crate::rail::RailPolicy;
        let msgs = vec![
            Message::new(0, 8, 100),
            Message::new(1, 8, 60),
            Message::new(2, 10, 50),
            Message::new(4, 12, 70),
        ];
        for policy in RailPolicy::ALL {
            for nics in [1, 2, 3] {
                let net = toy().with_node_rails(nics, policy);
                let load = net.round_load(&msgs);
                for l in 0..net.hierarchy().depth() {
                    assert_eq!(
                        load.rail_bytes_up[l].iter().sum::<u64>(),
                        load.bytes_through[l],
                        "{policy} x{nics} level {l}: up rows must partition the bytes"
                    );
                    assert_eq!(
                        load.rail_bytes_down[l].iter().sum::<u64>(),
                        load.bytes_through[l]
                    );
                    assert_eq!(
                        load.rail_active_up[l].iter().sum::<usize>(),
                        load.active_up[l]
                    );
                    assert_eq!(
                        load.rail_active_down[l].iter().sum::<usize>(),
                        load.active_down[l]
                    );
                    assert_eq!(load.rail_bytes_up[l].len(), net.rail_counts()[l].max(1));
                }
            }
        }
    }

    #[test]
    fn per_rail_bound_is_strict_on_a_skewed_rail_split() {
        use crate::rail::RailPolicy;
        // Two crossings of opposite (src + dst) parity activate both rails
        // of the sender NIC, but 99% of the bytes ride rail 0. The
        // aggregate bound pools 1010 bytes over both active rails; the
        // per-rail histogram sees rail 0 draining 1000 bytes alone and is
        // strictly larger.
        let net = toy().with_node_rails(2, RailPolicy::RoundRobin);
        let msgs = vec![Message::new(0, 8, 1000), Message::new(1, 8, 10)];
        let load = net.round_load(&msgs);
        assert_eq!(load.rail_bytes_up[0], vec![1000, 10]);
        let per_rail = net.round_lower_bound_from(&load);
        let aggregate = net.round_lower_bound_aggregate_from(&load);
        assert!(
            per_rail > aggregate * (1.0 + 1e-9),
            "per-rail {per_rail} must strictly dominate aggregate {aggregate}"
        );
        // …and remains admissible for the exact railed cost.
        assert!(per_rail <= net.round_time(&msgs) * (1.0 + 1e-12));
    }

    #[test]
    fn aggregate_schedule_and_fluid_bounds_stay_admissible_rungs() {
        use crate::rail::RailPolicy;
        let net = toy().with_node_rails(2, RailPolicy::RoundRobin);
        let s = Schedule::with(vec![
            Round::with(vec![Message::new(0, 8, 1000), Message::new(2, 10, 1000)]),
            Round::with(vec![Message::new(0, 8, 1000), Message::new(2, 10, 1000)]),
            Round::with(vec![Message::new(1, 9, 500)]),
        ]);
        let agg = net.schedule_lower_bound_aggregate(&s);
        let tight = net.schedule_lower_bound(&s);
        assert!(agg <= tight, "{agg} vs {tight}");
        assert!(tight <= net.schedule_time(&s) * (1.0 + 1e-12));
        let jobs = [s.clone(), s];
        let fagg = fluid_lower_bound_aggregate(&net, &jobs);
        let ftight = fluid_lower_bound(&net, &jobs);
        assert!(fagg <= ftight, "{fagg} vs {ftight}");
        // Single-rail: both rungs coincide bit-for-bit.
        let one = toy().with_node_rails(1, RailPolicy::RoundRobin);
        assert_eq!(
            one.schedule_lower_bound(&jobs[0]).to_bits(),
            one.schedule_lower_bound_aggregate(&jobs[0]).to_bits()
        );
        assert_eq!(
            fluid_lower_bound(&one, &jobs).to_bits(),
            fluid_lower_bound_aggregate(&one, &jobs).to_bits()
        );
    }

    #[test]
    fn local_copies_bound_by_copy_bandwidth() {
        let net = toy();
        let m = [Message::new(3, 3, 5000)];
        let lb = net.round_lower_bound(&m);
        assert!((lb - 5.0).abs() < 1e-12, "{lb}");
        assert!(lb <= net.round_time(&m) * (1.0 + 1e-12));
    }
}
