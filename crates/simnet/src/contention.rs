//! Max-min fair bandwidth allocation (progressive water-filling).
//!
//! Given a set of flows, each traversing a set of capacitated links, the
//! max-min fair allocation repeatedly saturates the most contended link:
//! the link whose equal share `capacity / active_flows` is smallest fixes
//! the rate of every flow through it; those flows are frozen, their rate is
//! subtracted from every link they traverse, and the process repeats until
//! all flows are frozen.
//!
//! This is the standard fluid model of TCP-fair networks and is a good
//! first-order model for how concurrent MPI messages share NICs,
//! inter-socket links and memory systems.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A heap candidate: link `link` offered share `share` at state `version`.
/// Ordered by share (then link index for determinism); stale versions are
/// discarded on pop.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    share: f64,
    version: u64,
    link: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.share
            .total_cmp(&other.share)
            .then_with(|| self.link.cmp(&other.link))
    }
}

/// Reusable scratch for [`max_min_rates_csr`]: every per-solve vector and
/// the candidate heap's backing buffer. After the first few solves the
/// buffers reach their high-water marks and subsequent solves perform no
/// heap allocation — the property the sweep loops' steady state relies on.
#[derive(Debug, Default)]
pub struct ContentionWorkspace {
    count: Vec<usize>,
    offsets: Vec<usize>,
    link_flows: Vec<usize>,
    remaining: Vec<f64>,
    version: Vec<u64>,
    frozen: Vec<bool>,
    heap_buf: Vec<Reverse<Candidate>>,
    touched: Vec<usize>,
}

impl ContentionWorkspace {
    /// An empty workspace (no allocations until the first solve).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes max-min fair rates.
///
/// * `flows[f]` — the list of link indices flow `f` traverses. A flow with
///   an empty link list is unconstrained and gets `f64::INFINITY`.
/// * `capacities[l]` — capacity of link `l` (any unit; results share it).
///
/// Returns the per-flow rates. Guarantees (tested):
/// * **feasibility** — the total rate through every link never exceeds its
///   capacity (up to floating-point slack);
/// * **saturation** — every flow is bottlenecked by at least one saturated
///   link (no rate can be raised without lowering another);
/// * **symmetry** — flows with identical link sets get identical rates
///   (exactly: they freeze together on the same bottleneck link).
///
/// This is the incremental solver: per-link flow lists plus a lazy
/// min-heap of link shares. Each freezing iteration pops the bottleneck
/// link, freezes only *its* flows, and updates only the links those flows
/// traverse — `O((Σ|flows[f]| + #links) · log #links)` total, versus the
/// reference solver's full rescan of every flow per iteration. The lazy
/// heap is sound because a link's equal share never decreases as other
/// flows freeze (water-filling monotonicity), so a popped up-to-date entry
/// is the true minimum. No tie tolerance is needed at all: links tied with
/// the bottleneck simply pop next with an unchanged share.
///
/// This is a thin wrapper over [`max_min_rates_csr`] with a throwaway
/// workspace; hot paths (e.g. `NetworkModel::round_profile`) call the CSR
/// form with a reused [`ContentionWorkspace`] instead.
/// [`max_min_rates_reference`] is the original dense solver, kept as an
/// oracle for property tests and benchmarks.
pub fn max_min_rates(flows: &[Vec<usize>], capacities: &[f64]) -> Vec<f64> {
    let mut offsets = Vec::with_capacity(flows.len() + 1);
    offsets.push(0usize);
    let mut links = Vec::with_capacity(flows.iter().map(Vec::len).sum());
    for f in flows {
        links.extend_from_slice(f);
        offsets.push(links.len());
    }
    let mut ws = ContentionWorkspace::new();
    let mut rates = Vec::new();
    max_min_rates_csr(&mut ws, &offsets, &links, capacities, &mut rates);
    rates
}

/// [`max_min_rates`] over flows in CSR layout, with caller-owned scratch
/// and output: flow `f`'s links are
/// `flow_links[flow_offsets[f]..flow_offsets[f + 1]]`, rates are written
/// into `rates` (cleared first). Bit-identical to [`max_min_rates`] — the
/// freezing schedule depends only on the data, not the containers — while
/// allocating nothing once `ws` and `rates` are warm.
pub fn max_min_rates_csr(
    ws: &mut ContentionWorkspace,
    flow_offsets: &[usize],
    flow_links: &[usize],
    capacities: &[f64],
    rates: &mut Vec<f64>,
) {
    let nf = flow_offsets.len().saturating_sub(1);
    let nl = capacities.len();
    rates.clear();
    rates.resize(nf, f64::INFINITY);
    if nf == 0 {
        return;
    }
    let flow = |f: usize| &flow_links[flow_offsets[f]..flow_offsets[f + 1]];
    ws.count.clear();
    ws.count.resize(nl, 0);
    let mut active = 0usize;
    for f in 0..nf {
        for &l in flow(f) {
            assert!(l < nl, "flow {f} references unknown link {l}");
            ws.count[l] += 1;
        }
        if !flow(f).is_empty() {
            active += 1;
        }
    }
    // Per-link flow lists in CSR layout (frozen flows are lazily skipped,
    // not removed): link `l`'s flows live at
    // `link_flows[offsets[l]..offsets[l + 1]]`.
    ws.offsets.clear();
    ws.offsets.resize(nl + 1, 0);
    for l in 0..nl {
        ws.offsets[l + 1] = ws.offsets[l] + ws.count[l];
    }
    ws.link_flows.clear();
    ws.link_flows.resize(ws.offsets[nl], 0);
    // `count` doubles as the fill cursor (offset from each link's start);
    // it is rebuilt to flow counts right after.
    for c in ws.count.iter_mut() {
        *c = 0;
    }
    for f in 0..nf {
        for &l in flow(f) {
            ws.link_flows[ws.offsets[l] + ws.count[l]] = f;
            ws.count[l] += 1;
        }
    }
    ws.remaining.clear();
    ws.remaining.extend_from_slice(capacities);
    ws.version.clear();
    ws.version.resize(nl, 0);
    ws.frozen.clear();
    ws.frozen.resize(nf, false);
    ws.heap_buf.clear();
    ws.heap_buf
        .extend((0..nl).filter(|&l| ws.count[l] > 0).map(|l| {
            Reverse(Candidate {
                share: ws.remaining[l].max(0.0) / ws.count[l] as f64,
                version: 0,
                link: l,
            })
        }));
    // Heapify the reused buffer; its allocation returns to `ws` below.
    let mut heap = BinaryHeap::from(std::mem::take(&mut ws.heap_buf));
    let mut freeze_iterations = 0u64;
    while active > 0 {
        let Reverse(candidate) = heap.pop().expect("active flows imply a candidate link");
        let l = candidate.link;
        if candidate.version != ws.version[l] || ws.count[l] == 0 {
            continue; // superseded by a later state change
        }
        freeze_iterations += 1;
        let bottleneck_share = candidate.share;
        debug_assert!(bottleneck_share.is_finite());
        // Freeze every still-active flow through the bottleneck link and
        // return its rate to the links it traverses.
        ws.touched.clear();
        for idx in ws.offsets[l]..ws.offsets[l + 1] {
            let f = ws.link_flows[idx];
            if ws.frozen[f] {
                continue;
            }
            ws.frozen[f] = true;
            active -= 1;
            rates[f] = bottleneck_share;
            for &l2 in flow(f) {
                ws.remaining[l2] -= bottleneck_share;
                ws.count[l2] -= 1;
                ws.version[l2] += 1;
                if l2 != l {
                    ws.touched.push(l2);
                }
            }
        }
        debug_assert_eq!(ws.count[l], 0, "bottleneck link fully drained");
        // One refreshed candidate per touched link, reflecting all of this
        // round's freezes at once (per-update pushes would all be stale).
        ws.touched.sort_unstable();
        ws.touched.dedup();
        for &l2 in &ws.touched {
            if ws.count[l2] > 0 {
                heap.push(Reverse(Candidate {
                    share: ws.remaining[l2].max(0.0) / ws.count[l2] as f64,
                    version: ws.version[l2],
                    link: l2,
                }));
            }
        }
    }
    // Hand the heap's buffer back to the workspace for the next solve.
    ws.heap_buf = heap.into_vec();
    ws.heap_buf.clear();
    // One coarse telemetry emission per solve (a relaxed load when no
    // collector is installed).
    if mre_core::telemetry::enabled() {
        mre_core::telemetry::counter_add("simnet.maxmin.solves", 1);
        mre_core::telemetry::counter_add("simnet.maxmin.iterations", freeze_iterations);
        mre_core::telemetry::counter_add("simnet.maxmin.flows", nf as u64);
        mre_core::telemetry::observe("simnet.maxmin.iterations.hist", freeze_iterations as f64);
    }
}

/// The original dense water-filling solver: every iteration scans all
/// links for the bottleneck share and rescans all unfrozen flows to
/// freeze the constrained ones. `O(iterations · Σ|flows[f]|)` with up to
/// `min(#flows, #links)` iterations.
///
/// Kept as the correctness oracle for [`max_min_rates`] (property-tested
/// to match) and as the baseline in the contention benchmarks.
///
/// The freeze tolerance is relative to each link's remaining capacity:
/// the cancellation error accumulated in `remaining_cap[l]` scales with
/// the capacity magnitude, so on machines mixing a 100 Gb/s NIC with
/// megabyte-scale local links a tolerance derived from the (possibly
/// tiny) bottleneck share — as this solver originally used — fails to
/// recognize ties on the large links and splits simultaneous freezes
/// across iterations.
pub fn max_min_rates_reference(flows: &[Vec<usize>], capacities: &[f64]) -> Vec<f64> {
    let nf = flows.len();
    let nl = capacities.len();
    let mut rates = vec![f64::INFINITY; nf];
    if nf == 0 {
        return rates;
    }
    for (f, links) in flows.iter().enumerate() {
        for &l in links {
            assert!(l < nl, "flow {f} references unknown link {l}");
        }
    }
    let mut remaining_cap = capacities.to_vec();
    let mut link_flow_count = vec![0usize; nl];
    let mut frozen = vec![false; nf];
    for (f, links) in flows.iter().enumerate() {
        if links.is_empty() {
            frozen[f] = true; // unconstrained
        } else {
            for &l in links {
                link_flow_count[l] += 1;
            }
        }
    }
    let mut unfrozen = frozen.iter().filter(|&&f| !f).count();
    while unfrozen > 0 {
        // The bottleneck link: smallest equal share among links with
        // active flows.
        let mut bottleneck_share = f64::INFINITY;
        for l in 0..nl {
            if link_flow_count[l] > 0 {
                let share = remaining_cap[l].max(0.0) / link_flow_count[l] as f64;
                if share < bottleneck_share {
                    bottleneck_share = share;
                }
            }
        }
        debug_assert!(bottleneck_share.is_finite());
        // Freeze every flow passing through a link at (or numerically at)
        // the bottleneck share. The slack is relative to the link's own
        // remaining capacity — the scale its rounding error lives at —
        // not to the bottleneck share, which may be orders of magnitude
        // smaller on mixed-magnitude machines.
        let mut to_freeze = Vec::new();
        for (f, links) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            let constrained = links.iter().any(|&l| {
                let n = link_flow_count[l] as f64;
                let share = remaining_cap[l].max(0.0) / n;
                let epsilon = remaining_cap[l].max(0.0) * 1e-12 / n + f64::MIN_POSITIVE;
                share <= bottleneck_share + epsilon
            });
            if constrained {
                to_freeze.push(f);
            }
        }
        debug_assert!(!to_freeze.is_empty(), "water-filling must progress");
        for f in to_freeze {
            frozen[f] = true;
            unfrozen -= 1;
            rates[f] = bottleneck_share;
            for &l in &flows[f] {
                remaining_cap[l] -= bottleneck_share;
                link_flow_count[l] -= 1;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_per_link(flows: &[Vec<usize>], rates: &[f64], nl: usize) -> Vec<f64> {
        let mut totals = vec![0.0; nl];
        for (f, links) in flows.iter().enumerate() {
            for &l in links {
                totals[l] += rates[f];
            }
        }
        totals
    }

    #[test]
    fn single_flow_gets_path_minimum() {
        let flows = vec![vec![0, 1, 2]];
        let caps = vec![10.0, 4.0, 7.0];
        let rates = max_min_rates(&flows, &caps);
        assert_eq!(rates, vec![4.0]);
    }

    #[test]
    fn equal_flows_share_equally() {
        let flows = vec![vec![0], vec![0], vec![0], vec![0]];
        let caps = vec![8.0];
        let rates = max_min_rates(&flows, &caps);
        assert_eq!(rates, vec![2.0; 4]);
    }

    #[test]
    fn classic_three_flow_example() {
        // Flow A uses links 0 and 1; B uses 0; C uses 1.
        // caps: link0 = 10, link1 = 4.
        // Water-filling: link1 share = 2 → freeze A and C at 2;
        // link0 then has 8 left for B alone → 8.
        let flows = vec![vec![0, 1], vec![0], vec![1]];
        let caps = vec![10.0, 4.0];
        let rates = max_min_rates(&flows, &caps);
        assert_eq!(rates[0], 2.0);
        assert_eq!(rates[2], 2.0);
        assert_eq!(rates[1], 8.0);
    }

    #[test]
    fn unconstrained_flow_is_infinite() {
        let flows = vec![vec![], vec![0]];
        let caps = vec![5.0];
        let rates = max_min_rates(&flows, &caps);
        assert!(rates[0].is_infinite());
        assert_eq!(rates[1], 5.0);
    }

    #[test]
    fn no_flows() {
        assert!(max_min_rates(&[], &[1.0]).is_empty());
    }

    #[test]
    fn feasibility_and_symmetry_random() {
        use mre_rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let nl = rng.gen_range(1..8);
            let nf = rng.gen_range(1..40);
            let caps: Vec<f64> = (0..nl).map(|_| rng.gen_range(1.0..100.0)).collect();
            let flows: Vec<Vec<usize>> = (0..nf)
                .map(|_| {
                    let mut path: Vec<usize> = (0..nl).filter(|_| rng.gen_bool(0.5)).collect();
                    if path.is_empty() {
                        path.push(rng.gen_range(0..nl));
                    }
                    path
                })
                .collect();
            let rates = max_min_rates(&flows, &caps);
            // Feasibility.
            for (l, &total) in total_per_link(&flows, &rates, nl).iter().enumerate() {
                assert!(
                    total <= caps[l] * (1.0 + 1e-9),
                    "link {l} oversubscribed: {total} > {}",
                    caps[l]
                );
            }
            // Symmetry: same path ⇒ same rate.
            for a in 0..nf {
                for b in (a + 1)..nf {
                    let (mut pa, mut pb) = (flows[a].clone(), flows[b].clone());
                    pa.sort_unstable();
                    pb.sort_unstable();
                    if pa == pb {
                        assert!((rates[a] - rates[b]).abs() < 1e-9 * rates[a].max(1.0));
                    }
                }
            }
            // Every flow touches at least one (near-)saturated link.
            let totals = total_per_link(&flows, &rates, nl);
            for (f, links) in flows.iter().enumerate() {
                let bottlenecked = links.iter().any(|&l| totals[l] >= caps[l] * (1.0 - 1e-6));
                assert!(bottlenecked, "flow {f} is not bottlenecked anywhere");
            }
        }
    }

    #[test]
    fn adding_flows_never_raises_existing_rates() {
        let caps = vec![12.0, 6.0];
        let base = vec![vec![0], vec![0, 1]];
        let more = vec![vec![0], vec![0, 1], vec![1], vec![0]];
        let r1 = max_min_rates(&base, &caps);
        let r2 = max_min_rates(&more, &caps);
        assert!(r2[0] <= r1[0] + 1e-12);
        assert!(r2[1] <= r1[1] + 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_link_index_panics() {
        max_min_rates(&[vec![3]], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_link_index_panics_in_reference() {
        max_min_rates_reference(&[vec![3]], &[1.0]);
    }

    /// Relative tolerance comparing `a` and `b` elementwise.
    fn assert_rates_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            if x.is_infinite() || y.is_infinite() {
                assert_eq!(x, y, "flow {i}");
            } else {
                let scale = x.abs().max(y.abs()).max(1e-300);
                assert!((x - y).abs() <= tol * scale, "flow {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn incremental_matches_reference_random() {
        use mre_rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(0xBEEF);
        for _ in 0..200 {
            let nl = rng.gen_range(1usize..10);
            let nf = rng.gen_range(1usize..60);
            let caps: Vec<f64> = (0..nl).map(|_| rng.gen_range(0.5f64..200.0)).collect();
            let flows: Vec<Vec<usize>> = (0..nf)
                .map(|_| {
                    let mut path: Vec<usize> = (0..nl).filter(|_| rng.gen_bool(0.4)).collect();
                    if path.is_empty() && rng.gen_bool(0.8) {
                        path.push(rng.gen_range(0..nl));
                    }
                    path
                })
                .collect();
            let fast = max_min_rates(&flows, &caps);
            let reference = max_min_rates_reference(&flows, &caps);
            // Freezing order differs between the solvers, so rates agree
            // up to floating-point rounding, not bit-for-bit.
            assert_rates_close(&fast, &reference, 1e-6);
        }
    }

    /// Regression for the epsilon fix: capacities spanning eight orders of
    /// magnitude (100 Gb/s NIC, kB/s-scale slow links). A tolerance
    /// derived from the bottleneck share is far below the rounding error
    /// of the big link's remaining capacity; the per-link relative
    /// tolerance (reference) and the tolerance-free heap (incremental)
    /// must both keep symmetric flows identical and links feasible.
    #[test]
    fn mixed_magnitude_capacities() {
        // 32 flows through a shared 100 Gb/s NIC; 16 of them also cross a
        // slow 1 kB/s control link each (two flows per slow link), so the
        // slow links freeze first at hugely smaller shares.
        let nic = 100.0e9 / 8.0;
        let slow = 1e3;
        let mut caps = vec![nic];
        let mut flows = Vec::new();
        for f in 0..32usize {
            if f < 16 {
                let slow_link = 1 + f / 2;
                if caps.len() <= slow_link {
                    caps.push(slow);
                }
                flows.push(vec![0, slow_link]);
            } else {
                flows.push(vec![0]);
            }
        }
        for rates in [
            max_min_rates(&flows, &caps),
            max_min_rates_reference(&flows, &caps),
        ] {
            // Slow-link flows: 2 per 1 kB/s link → 500 B/s each, exactly.
            for (f, &rate) in rates.iter().enumerate().take(16) {
                assert_eq!(rate, 500.0, "flow {f}");
            }
            // NIC-only flows split the NIC remainder equally — and
            // *exactly* equally (symmetry), despite the magnitude mix.
            let expected = (nic - 16.0 * 500.0) / 16.0;
            for f in 16..32 {
                assert_eq!(rates[f], rates[16], "flow {f} breaks symmetry");
                assert!((rates[f] - expected).abs() <= 1e-9 * expected);
            }
            // Feasibility on the NIC.
            let total: f64 = rates.iter().sum();
            assert!(total <= nic * (1.0 + 1e-9));
        }
    }

    /// The scenario the old epsilon mishandled: many freeze iterations
    /// chip away at a huge shared link, then symmetric flows remain. After
    /// hundreds of subtractions the big link's remaining capacity carries
    /// rounding error well above `bottleneck_share * 1e-12`; ties must
    /// still be honored.
    #[test]
    fn many_iterations_on_huge_shared_link() {
        let nic = 12.5e9;
        let n_private = 400usize;
        let mut caps = vec![nic];
        let mut flows = Vec::new();
        for f in 0..n_private {
            // Irrational-ish ascending private caps force one freeze
            // iteration each, all touching the shared link.
            caps.push(1.0 + f as f64 * std::f64::consts::SQRT_2 * 1e-3);
            flows.push(vec![0, 1 + f]);
        }
        // Two symmetric NIC-only flows freeze last.
        flows.push(vec![0]);
        flows.push(vec![0]);
        for rates in [
            max_min_rates(&flows, &caps),
            max_min_rates_reference(&flows, &caps),
        ] {
            for f in 0..n_private {
                assert!((rates[f] - caps[1 + f]).abs() <= 1e-9 * caps[1 + f]);
            }
            assert_eq!(
                rates[n_private],
                rates[n_private + 1],
                "symmetric tail flows diverged"
            );
            let total: f64 = rates.iter().sum();
            assert!(total <= nic * (1.0 + 1e-9), "NIC oversubscribed: {total}");
        }
    }

    #[test]
    fn reference_matches_incremental_on_paper_examples() {
        let cases: Vec<(Vec<Vec<usize>>, Vec<f64>)> = vec![
            (vec![vec![0, 1, 2]], vec![10.0, 4.0, 7.0]),
            (vec![vec![0], vec![0], vec![0], vec![0]], vec![8.0]),
            (vec![vec![0, 1], vec![0], vec![1]], vec![10.0, 4.0]),
            (vec![vec![], vec![0]], vec![5.0]),
        ];
        for (flows, caps) in cases {
            assert_rates_close(
                &max_min_rates(&flows, &caps),
                &max_min_rates_reference(&flows, &caps),
                1e-12,
            );
        }
    }
}
