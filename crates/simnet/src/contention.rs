//! Max-min fair bandwidth allocation (progressive water-filling).
//!
//! Given a set of flows, each traversing a set of capacitated links, the
//! max-min fair allocation repeatedly saturates the most contended link:
//! the link whose equal share `capacity / active_flows` is smallest fixes
//! the rate of every flow through it; those flows are frozen, their rate is
//! subtracted from every link they traverse, and the process repeats until
//! all flows are frozen.
//!
//! This is the standard fluid model of TCP-fair networks and is a good
//! first-order model for how concurrent MPI messages share NICs,
//! inter-socket links and memory systems.

/// Computes max-min fair rates.
///
/// * `flows[f]` — the list of link indices flow `f` traverses. A flow with
///   an empty link list is unconstrained and gets `f64::INFINITY`.
/// * `capacities[l]` — capacity of link `l` (any unit; results share it).
///
/// Returns the per-flow rates. Guarantees (tested):
/// * **feasibility** — the total rate through every link never exceeds its
///   capacity (up to floating-point slack);
/// * **saturation** — every flow is bottlenecked by at least one saturated
///   link (no rate can be raised without lowering another);
/// * **symmetry** — flows with identical link sets get identical rates.
///
/// Complexity: `O(iterations · Σ|flows[f]|)` with at most `min(#flows,
/// #links)` iterations — fine for the few thousand flows per round that
/// collective schedules produce.
pub fn max_min_rates(flows: &[Vec<usize>], capacities: &[f64]) -> Vec<f64> {
    let nf = flows.len();
    let nl = capacities.len();
    let mut rates = vec![f64::INFINITY; nf];
    if nf == 0 {
        return rates;
    }
    for (f, links) in flows.iter().enumerate() {
        for &l in links {
            assert!(l < nl, "flow {f} references unknown link {l}");
        }
    }
    let mut remaining_cap = capacities.to_vec();
    let mut link_flow_count = vec![0usize; nl];
    let mut frozen = vec![false; nf];
    for (f, links) in flows.iter().enumerate() {
        if links.is_empty() {
            frozen[f] = true; // unconstrained
        } else {
            for &l in links {
                link_flow_count[l] += 1;
            }
        }
    }
    let mut unfrozen = frozen.iter().filter(|&&f| !f).count();
    while unfrozen > 0 {
        // The bottleneck link: smallest equal share among links with
        // active flows.
        let mut bottleneck_share = f64::INFINITY;
        for l in 0..nl {
            if link_flow_count[l] > 0 {
                let share = remaining_cap[l].max(0.0) / link_flow_count[l] as f64;
                if share < bottleneck_share {
                    bottleneck_share = share;
                }
            }
        }
        debug_assert!(bottleneck_share.is_finite());
        // Freeze every flow passing through a link at (or numerically at)
        // the bottleneck share.
        let epsilon = bottleneck_share * 1e-12 + f64::MIN_POSITIVE;
        let mut to_freeze = Vec::new();
        for (f, links) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            let constrained = links.iter().any(|&l| {
                let share = remaining_cap[l].max(0.0) / link_flow_count[l] as f64;
                share <= bottleneck_share + epsilon
            });
            if constrained {
                to_freeze.push(f);
            }
        }
        debug_assert!(!to_freeze.is_empty(), "water-filling must progress");
        for f in to_freeze {
            frozen[f] = true;
            unfrozen -= 1;
            rates[f] = bottleneck_share;
            for &l in &flows[f] {
                remaining_cap[l] -= bottleneck_share;
                link_flow_count[l] -= 1;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_per_link(flows: &[Vec<usize>], rates: &[f64], nl: usize) -> Vec<f64> {
        let mut totals = vec![0.0; nl];
        for (f, links) in flows.iter().enumerate() {
            for &l in links {
                totals[l] += rates[f];
            }
        }
        totals
    }

    #[test]
    fn single_flow_gets_path_minimum() {
        let flows = vec![vec![0, 1, 2]];
        let caps = vec![10.0, 4.0, 7.0];
        let rates = max_min_rates(&flows, &caps);
        assert_eq!(rates, vec![4.0]);
    }

    #[test]
    fn equal_flows_share_equally() {
        let flows = vec![vec![0], vec![0], vec![0], vec![0]];
        let caps = vec![8.0];
        let rates = max_min_rates(&flows, &caps);
        assert_eq!(rates, vec![2.0; 4]);
    }

    #[test]
    fn classic_three_flow_example() {
        // Flow A uses links 0 and 1; B uses 0; C uses 1.
        // caps: link0 = 10, link1 = 4.
        // Water-filling: link1 share = 2 → freeze A and C at 2;
        // link0 then has 8 left for B alone → 8.
        let flows = vec![vec![0, 1], vec![0], vec![1]];
        let caps = vec![10.0, 4.0];
        let rates = max_min_rates(&flows, &caps);
        assert_eq!(rates[0], 2.0);
        assert_eq!(rates[2], 2.0);
        assert_eq!(rates[1], 8.0);
    }

    #[test]
    fn unconstrained_flow_is_infinite() {
        let flows = vec![vec![], vec![0]];
        let caps = vec![5.0];
        let rates = max_min_rates(&flows, &caps);
        assert!(rates[0].is_infinite());
        assert_eq!(rates[1], 5.0);
    }

    #[test]
    fn no_flows() {
        assert!(max_min_rates(&[], &[1.0]).is_empty());
    }

    #[test]
    fn feasibility_and_symmetry_random() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let nl = rng.gen_range(1..8);
            let nf = rng.gen_range(1..40);
            let caps: Vec<f64> = (0..nl).map(|_| rng.gen_range(1.0..100.0)).collect();
            let flows: Vec<Vec<usize>> = (0..nf)
                .map(|_| {
                    let mut path: Vec<usize> =
                        (0..nl).filter(|_| rng.gen_bool(0.5)).collect();
                    if path.is_empty() {
                        path.push(rng.gen_range(0..nl));
                    }
                    path
                })
                .collect();
            let rates = max_min_rates(&flows, &caps);
            // Feasibility.
            for (l, &total) in total_per_link(&flows, &rates, nl).iter().enumerate() {
                assert!(
                    total <= caps[l] * (1.0 + 1e-9),
                    "link {l} oversubscribed: {total} > {}",
                    caps[l]
                );
            }
            // Symmetry: same path ⇒ same rate.
            for a in 0..nf {
                for b in (a + 1)..nf {
                    let (mut pa, mut pb) = (flows[a].clone(), flows[b].clone());
                    pa.sort_unstable();
                    pb.sort_unstable();
                    if pa == pb {
                        assert!((rates[a] - rates[b]).abs() < 1e-9 * rates[a].max(1.0));
                    }
                }
            }
            // Every flow touches at least one (near-)saturated link.
            let totals = total_per_link(&flows, &rates, nl);
            for (f, links) in flows.iter().enumerate() {
                let bottlenecked = links
                    .iter()
                    .any(|&l| totals[l] >= caps[l] * (1.0 - 1e-6));
                assert!(bottlenecked, "flow {f} is not bottlenecked anywhere");
            }
        }
    }

    #[test]
    fn adding_flows_never_raises_existing_rates() {
        let caps = vec![12.0, 6.0];
        let base = vec![vec![0], vec![0, 1]];
        let more = vec![vec![0], vec![0, 1], vec![1], vec![0]];
        let r1 = max_min_rates(&base, &caps);
        let r2 = max_min_rates(&more, &caps);
        assert!(r2[0] <= r1[0] + 1e-12);
        assert!(r2[1] <= r1[1] + 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_link_index_panics() {
        max_min_rates(&[vec![3]], &[1.0]);
    }
}
