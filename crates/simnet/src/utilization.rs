//! Per-level traffic accounting — the diagnostic view behind the paper's
//! *percentages of process pairs per level* metric, applied to actual
//! schedules: how many bytes does a collective push across each hierarchy
//! level, and which level's links are the busiest?
//!
//! Unlike the timing models this is exact bookkeeping, independent of the
//! contention discipline: useful for explaining *why* an order wins
//! (e.g. a packed alltoall moves zero bytes across NICs).

use crate::network::NetworkModel;
use crate::schedule::Schedule;
use mre_core::Hierarchy;

/// Traffic breakdown of a schedule over one hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct Utilization {
    /// `bytes_crossing[j]` — total payload whose outermost coordinate
    /// difference is at level `j` (i.e. that crosses level `j`);
    /// `bytes_crossing[k]` counts local (same-core) copies.
    pub bytes_crossing: Vec<u64>,
    /// Peak bytes through a single directed uplink of each level within
    /// one round — the hot-spot measure.
    pub peak_link_bytes: Vec<u64>,
    /// Number of messages per crossing level (same indexing).
    pub message_counts: Vec<usize>,
    /// Sum of `bytes_crossing`, computed once at construction so the
    /// per-level fraction queries don't re-sum on every call.
    total_bytes: u64,
}

impl Utilization {
    /// Total payload bytes transferred by the schedule (including local
    /// copies) — the denominator of [`Self::crossing_fraction`] and of
    /// the time-sliced occupancy view in `mre-trace`.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Fraction of all transferred bytes that cross level `j`.
    pub fn crossing_fraction(&self, j: usize) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.bytes_crossing[j] as f64 / self.total_bytes as f64
        }
    }

    /// The outermost level carrying any traffic (`None` if all traffic is
    /// local).
    pub fn outermost_level_used(&self) -> Option<usize> {
        self.bytes_crossing
            .iter()
            .enumerate()
            .find(|&(j, &b)| j < self.bytes_crossing.len() - 1 && b > 0)
            .map(|(j, _)| j)
    }
}

/// Accounts the traffic of `schedule` on `hierarchy`.
pub fn utilization(hierarchy: &Hierarchy, schedule: &Schedule) -> Utilization {
    let k = hierarchy.depth();
    let strides = hierarchy.strides();
    let mut bytes_crossing = vec![0u64; k + 1];
    let mut message_counts = vec![0usize; k + 1];
    let mut peak_link_bytes = vec![0u64; k];
    // Per-round link loads (directed): (level, instance, up) → bytes.
    let mut per_round: std::collections::HashMap<(usize, usize, bool), u64> =
        std::collections::HashMap::new();
    for round in &schedule.rounds {
        per_round.clear();
        for m in &round.messages {
            let j = if m.src == m.dst {
                k
            } else {
                strides
                    .iter()
                    .position(|&s| m.src / s != m.dst / s)
                    .expect("distinct cores differ at some level")
            };
            bytes_crossing[j] += m.bytes;
            message_counts[j] += 1;
            if j < k {
                for (level, &stride) in strides.iter().enumerate().skip(j) {
                    *per_round.entry((level, m.src / stride, true)).or_insert(0) += m.bytes;
                    *per_round.entry((level, m.dst / stride, false)).or_insert(0) += m.bytes;
                }
            }
        }
        for (&(level, _, _), &bytes) in &per_round {
            peak_link_bytes[level] = peak_link_bytes[level].max(bytes);
        }
    }
    let total_bytes = bytes_crossing.iter().sum();
    Utilization {
        bytes_crossing,
        peak_link_bytes,
        message_counts,
        total_bytes,
    }
}

/// Rail-aware spelling of [`utilization`]: on `net`'s fabric, bytes are
/// attributed to the *rail link* a message actually occupies (the same
/// pure [`NetworkModel::message_rail`] assignment both cost engines and
/// the schedule rail hints use) instead of the aggregate directed uplink,
/// so `peak_link_bytes` reports the hottest single rail. On an all-1-rail
/// model every message rides rail 0 and the accounting is identical to
/// [`utilization`] (shape-tested).
pub fn utilization_railed(net: &NetworkModel, schedule: &Schedule) -> Utilization {
    let hierarchy = net.hierarchy();
    let k = hierarchy.depth();
    let strides = hierarchy.strides();
    let mut bytes_crossing = vec![0u64; k + 1];
    let mut message_counts = vec![0usize; k + 1];
    let mut peak_link_bytes = vec![0u64; k];
    // Per-round rail-link loads: (level, instance, up, rail) → bytes.
    let mut per_round: std::collections::HashMap<(usize, usize, bool, usize), u64> =
        std::collections::HashMap::new();
    for round in &schedule.rounds {
        per_round.clear();
        for m in &round.messages {
            let j = if m.src == m.dst {
                k
            } else {
                strides
                    .iter()
                    .position(|&s| m.src / s != m.dst / s)
                    .expect("distinct cores differ at some level")
            };
            bytes_crossing[j] += m.bytes;
            message_counts[j] += 1;
            if j < k {
                for (level, &stride) in strides.iter().enumerate().skip(j) {
                    let up_rail = net.message_rail(level, m.src, m.dst, true);
                    let down_rail = net.message_rail(level, m.src, m.dst, false);
                    *per_round
                        .entry((level, m.src / stride, true, up_rail))
                        .or_insert(0) += m.bytes;
                    *per_round
                        .entry((level, m.dst / stride, false, down_rail))
                        .or_insert(0) += m.bytes;
                }
            }
        }
        for (&(level, _, _, _), &bytes) in &per_round {
            peak_link_bytes[level] = peak_link_bytes[level].max(bytes);
        }
    }
    let total_bytes = bytes_crossing.iter().sum();
    Utilization {
        bytes_crossing,
        peak_link_bytes,
        message_counts,
        total_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Message, Round};
    use mre_core::Permutation;

    fn h224() -> Hierarchy {
        Hierarchy::new(vec![2, 2, 4]).unwrap()
    }

    #[test]
    fn classifies_crossing_levels() {
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 1, 10), // same socket (level 2)
            Message::new(0, 4, 20), // cross socket (level 1)
            Message::new(0, 8, 40), // cross node (level 0)
            Message::new(5, 5, 80), // local copy
        ])]);
        let u = utilization(&h224(), &s);
        assert_eq!(u.bytes_crossing, vec![40, 20, 10, 80]);
        assert_eq!(u.message_counts, vec![1, 1, 1, 1]);
        assert_eq!(u.outermost_level_used(), Some(0));
        assert_eq!(u.total_bytes(), 150);
        assert!((u.crossing_fraction(0) - 40.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn packed_alltoall_never_touches_the_nic() {
        // The §4.1.3 explanation of packed invariance, as bookkeeping:
        // a socket-packed communicator's alltoall crosses no node link.
        use mre_core::subcomm::{subcommunicators, ColorScheme};
        let hydra = Hierarchy::new(vec![16, 2, 2, 8]).unwrap();
        let packed = subcommunicators(
            &hydra,
            &Permutation::parse("3-2-1-0").unwrap(),
            16,
            ColorScheme::Quotient,
        )
        .unwrap();
        let members = packed.members(0);
        let sched = {
            let mut s = Schedule::new();
            for r in 1..members.len() {
                let mut round = Round::new();
                for (i, &src) in members.iter().enumerate() {
                    round.push(Message::new(src, members[(i + r) % members.len()], 100));
                }
                s.push(round);
            }
            s
        };
        let u = utilization(&hydra, &sched);
        assert_eq!(u.bytes_crossing[0], 0, "no node-level traffic");
        assert_eq!(u.bytes_crossing[1], 0, "no socket-level traffic either");
        assert_eq!(u.peak_link_bytes[0], 0);
        // Everything stays inside socket 0: the outermost crossing is the
        // fake-group level.
        assert_eq!(u.outermost_level_used(), Some(2));
        // The spread order pushes everything across nodes.
        let spread = subcommunicators(
            &hydra,
            &Permutation::parse("0-1-2-3").unwrap(),
            16,
            ColorScheme::Quotient,
        )
        .unwrap();
        let members = spread.members(0);
        let mut s = Schedule::new();
        let mut round = Round::new();
        for (i, &src) in members.iter().enumerate() {
            round.push(Message::new(src, members[(i + 1) % members.len()], 100));
        }
        s.push(round);
        let u = utilization(&hydra, &s);
        assert_eq!(u.bytes_crossing[0], 1600);
        assert_eq!(u.outermost_level_used(), Some(0));
    }

    #[test]
    fn peak_link_accounts_per_round_aggregation() {
        // Two messages out of the same core in one round aggregate on its
        // uplink; across rounds they do not.
        let one_round = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 10),
            Message::new(0, 12, 30),
        ])]);
        let u = utilization(&h224(), &one_round);
        assert_eq!(u.peak_link_bytes[2], 40); // core 0's uplink, both msgs
        let two_rounds = Schedule::with(vec![
            Round::with(vec![Message::new(0, 8, 10)]),
            Round::with(vec![Message::new(0, 12, 30)]),
        ]);
        let u = utilization(&h224(), &two_rounds);
        assert_eq!(u.peak_link_bytes[2], 30);
    }

    #[test]
    fn railed_accounting_matches_rail_blind_on_one_rail() {
        // One rail per level ⇒ every message rides rail 0 and the railed
        // ledger must reproduce the aggregate one field for field.
        use crate::network::LinkParams;
        let net = NetworkModel::new(
            h224(),
            vec![
                LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 2.0,
                },
                LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1.0,
                },
                LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 0.5,
                },
            ],
            1000.0,
        );
        let s = Schedule::with(vec![
            Round::with(vec![
                Message::new(0, 8, 10),
                Message::new(0, 12, 30),
                Message::new(1, 5, 7),
                Message::new(3, 3, 11),
            ]),
            Round::with(vec![Message::new(8, 0, 25), Message::new(2, 3, 5)]),
        ]);
        assert_eq!(utilization_railed(&net, &s), utilization(&h224(), &s));
    }

    #[test]
    fn railed_accounting_splits_striped_rounds_across_rails() {
        // Two messages from different cores of node 0 to node 1 in one
        // round: round-robin rail assignment sends them up different NIC
        // rails, so the hottest *rail* carries one message's bytes while
        // the rail-blind view aggregates both on the node uplink.
        use crate::network::LinkParams;
        use crate::rail::RailPolicy;
        let net = NetworkModel::new(
            h224(),
            vec![
                LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 2.0,
                },
                LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1.0,
                },
                LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 0.5,
                },
            ],
            1000.0,
        )
        .with_node_rails(2, RailPolicy::RoundRobin);
        // Round-robin keys on the endpoint ids: 0 → 8 rides rail
        // (0 + 8) % 2 = 0, 1 → 8 rides rail (1 + 8) % 2 = 1.
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 10),
            Message::new(1, 8, 30),
        ])]);
        let railed = utilization_railed(&net, &s);
        let blind = utilization(&h224(), &s);
        assert_eq!(blind.peak_link_bytes[0], 40, "aggregate uplink sums both");
        assert_eq!(railed.peak_link_bytes[0], 30, "hottest rail carries one");
        // Levels below the striped one are unaffected.
        assert_eq!(railed.peak_link_bytes[1..], blind.peak_link_bytes[1..]);
        assert_eq!(railed.bytes_crossing, blind.bytes_crossing);
    }

    #[test]
    fn empty_schedule() {
        let u = utilization(&h224(), &Schedule::new());
        assert_eq!(u.bytes_crossing, vec![0, 0, 0, 0]);
        assert_eq!(u.outermost_level_used(), None);
        assert_eq!(u.total_bytes(), 0);
        assert_eq!(u.crossing_fraction(0), 0.0);
    }
}
