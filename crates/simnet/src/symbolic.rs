//! Symbolic payload axis — lockstep schedule cost as a piecewise-linear
//! function of payload bytes (DESIGN.md §7h).
//!
//! Every contention solve is payload-independent: a [`RoundProfile`]
//! assigns each message a `(latency, rate)` pair from endpoints alone, so
//! a round's time at payload `P` is `max_i (latency_i + bytes_i(P) /
//! rate_i)`. When the generator's message sizes are **linear in the
//! payload** — `bytes_i(P) = bytes_i(P_ref) · P / P_ref`, which holds for
//! every collective generator on power-of-two payload grids — the round
//! time is the upper envelope of affine functions of `P`, and the
//! schedule time (a sum of round times) is a **convex piecewise-linear
//! function of `P`**. A payload sweep therefore needs the expensive part
//! — the contention solves — exactly once per candidate, not once per
//! (candidate, payload).
//!
//! [`SymbolicScheduleCost::build`] captures a reference schedule's
//! profiles (through the round memo of
//! [`SharedCostCache`], so solves are
//! also shared across candidates) and precomputes the envelope. For each
//! payload grid point the sweep then:
//!
//! 1. generates the candidate's schedule at that payload (cheap — no
//!    solves) and checks [`matches`](SymbolicScheduleCost::matches): same
//!    endpoints, and every message's bytes exactly the linear prediction.
//!    Any non-linearity — `allreduce_ring`'s floor/ceil block splits at
//!    non-divisible sizes, an `Auto` algorithm flip between payloads, a
//!    `.max(1)` clamp — fails the check and the caller falls back to the
//!    memoized exact path, so exactness never rests on the linearity
//!    assumption;
//! 2. on a match, costs it with
//!    [`time_at_payload`](SymbolicScheduleCost::time_at_payload) — a
//!    replay of the captured profiles that is **bit-identical** to
//!    [`NetworkModel::schedule_time`] on the generated schedule (same
//!    per-message arithmetic in the same order), in O(messages) with zero
//!    solves and zero allocations;
//! 3. prunes with [`bound_at`](SymbolicScheduleCost::bound_at) — the
//!    envelope shaved by a 1e-9 relative guard band so floating-point
//!    reassociation between the envelope's `b + m·P` form and the
//!    replay's per-message form can never make the bound inadmissible
//!    (property-tested at 1e-12 relative agreement).

use crate::network::{NetworkModel, RoundProfile};
use crate::schedule::{Schedule, SharedCostCache};
use std::sync::Arc;

/// A convex piecewise-linear function of payload bytes on `[0, ∞)`:
/// segment `k` applies between `breakpoints[k-1]` and `breakpoints[k]`
/// and evaluates as `intercept + slope · payload`.
#[derive(Debug, Clone, PartialEq)]
pub struct PayloadEnvelope {
    /// Ascending interior breakpoints (payload bytes); `segments` has one
    /// more entry than this.
    breakpoints: Vec<f64>,
    /// `(intercept, slope)` of each segment, left to right.
    segments: Vec<(f64, f64)>,
}

impl PayloadEnvelope {
    /// Evaluates the envelope at `payload` bytes by segment lookup —
    /// O(log segments), no allocation.
    pub fn value(&self, payload: f64) -> f64 {
        let (b, m) = self.segment_at(payload);
        b + m * payload
    }

    /// The `(intercept, slope)` active at `payload` bytes.
    pub fn segment_at(&self, payload: f64) -> (f64, f64) {
        let idx = self.breakpoints.partition_point(|&x| x <= payload);
        self.segments[idx]
    }

    /// Number of linear segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }
}

/// One line `intercept + slope · payload` with its hull start.
#[derive(Debug, Clone, Copy)]
struct HullPiece {
    start: f64,
    intercept: f64,
    slope: f64,
}

/// Upper envelope of lines on `[0, ∞)` — the standard convex-hull sweep
/// over lines sorted by slope.
fn upper_envelope(mut lines: Vec<(f64, f64)>) -> Vec<HullPiece> {
    lines.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.total_cmp(&b.0)));
    // Equal slopes: only the largest intercept can appear on the envelope.
    lines.dedup_by(|next, prev| {
        if next.1 == prev.1 {
            prev.0 = prev.0.max(next.0);
            true
        } else {
            false
        }
    });
    let mut hull: Vec<HullPiece> = Vec::with_capacity(lines.len());
    for (intercept, slope) in lines {
        loop {
            let Some(&top) = hull.last() else {
                hull.push(HullPiece {
                    start: 0.0,
                    intercept,
                    slope,
                });
                break;
            };
            // Payload at which this (steeper) line overtakes the hull top.
            let cross = (top.intercept - intercept) / (slope - top.slope);
            if cross <= top.start {
                hull.pop();
                continue;
            }
            hull.push(HullPiece {
                start: cross,
                intercept,
                slope,
            });
            break;
        }
    }
    hull
}

/// One round of the reference schedule in symbolic form.
#[derive(Debug, Clone)]
struct SymbolicRound {
    /// The memoized contention profile of the round's endpoint pattern.
    profile: Arc<RoundProfile>,
    /// `(src, dst, bytes_at_reference)` per message, in round order.
    messages: Vec<(usize, usize, u64)>,
}

/// The cost of one candidate's schedule as a function of payload bytes:
/// captured profiles for exact replay plus the precomputed piecewise-linear
/// envelope for pruning. See the module docs for the exactness contract.
#[derive(Debug, Clone)]
pub struct SymbolicScheduleCost {
    model_fingerprint: u64,
    reference_payload: u64,
    rounds: Vec<SymbolicRound>,
    envelope: PayloadEnvelope,
}

impl SymbolicScheduleCost {
    /// Captures `schedule` (generated at `reference_payload` bytes) as a
    /// symbolic cost. Profiles come from `cache`'s round memo, so rounds
    /// shared with other candidates are solved once globally. Returns
    /// `None` only for a zero reference payload (no linear hypothesis to
    /// scale).
    pub fn build(
        net: &NetworkModel,
        cache: &SharedCostCache,
        schedule: &Schedule,
        reference_payload: u64,
    ) -> Option<Self> {
        if reference_payload == 0 {
            return None;
        }
        let inv_ref = reference_payload as f64;
        let mut rounds = Vec::with_capacity(schedule.rounds.len());
        let mut lines: Vec<(f64, f64)> = Vec::new();
        let mut hulls: Vec<Vec<HullPiece>> = Vec::with_capacity(schedule.rounds.len());
        for round in &schedule.rounds {
            let profile = cache.round_profile_memo(net, round);
            lines.clear();
            lines.extend(
                profile
                    .entries
                    .iter()
                    .zip(&round.messages)
                    .map(|(&(latency, rate), m)| (latency, m.bytes as f64 / (inv_ref * rate))),
            );
            if !lines.is_empty() {
                hulls.push(upper_envelope(std::mem::take(&mut lines)));
            }
            rounds.push(SymbolicRound {
                messages: round
                    .messages
                    .iter()
                    .map(|m| (m.src, m.dst, m.bytes))
                    .collect(),
                profile,
            });
        }
        Some(Self {
            model_fingerprint: net.fingerprint(),
            reference_payload,
            rounds,
            envelope: sum_envelopes(&hulls),
        })
    }

    /// The reference payload the captured schedule was generated at.
    pub fn reference_payload(&self) -> u64 {
        self.reference_payload
    }

    /// Fingerprint of the [`NetworkModel`] the profiles were solved
    /// against — callers should reject a model mismatch.
    pub fn model_fingerprint(&self) -> u64 {
        self.model_fingerprint
    }

    /// The schedule's cost as a convex piecewise-linear function of
    /// payload bytes (exact up to floating-point reassociation).
    pub fn envelope(&self) -> &PayloadEnvelope {
        &self.envelope
    }

    /// The linear byte prediction for a reference message of `bytes_ref`
    /// at `payload`: `bytes_ref · payload / reference_payload`, `None`
    /// when that is not an exact integer.
    fn scaled_bytes(&self, bytes_ref: u64, payload: u64) -> Option<u64> {
        let num = bytes_ref as u128 * payload as u128;
        let denom = self.reference_payload as u128;
        if !num.is_multiple_of(denom) {
            return None;
        }
        u64::try_from(num / denom).ok()
    }

    /// Whether `schedule` (generated at `payload` bytes) is exactly the
    /// linear scaling of the captured reference: same round and message
    /// structure, same endpoints in the same order, and every message's
    /// bytes equal to the integer prediction. O(messages), no solves.
    pub fn matches(&self, schedule: &Schedule, payload: u64) -> bool {
        if schedule.rounds.len() != self.rounds.len() {
            return false;
        }
        self.rounds
            .iter()
            .zip(&schedule.rounds)
            .all(|(sym, round)| {
                sym.messages.len() == round.messages.len()
                    && sym.messages.iter().zip(&round.messages).all(
                        |(&(src, dst, bytes_ref), m)| {
                            m.src == src
                                && m.dst == dst
                                && self.scaled_bytes(bytes_ref, payload) == Some(m.bytes)
                        },
                    )
            })
    }

    /// Exact schedule time at `payload` bytes, **bit-identical** to
    /// [`NetworkModel::schedule_time`] on the linearly-scaled schedule:
    /// the same `latency + bytes as f64 / rate` per message, the same
    /// max fold per round, the same round-order sum. Returns `None` when
    /// some message's scaled bytes are not an exact integer (the caller
    /// must fall back to the exact engine — [`matches`](Self::matches)
    /// would have failed too).
    pub fn time_at_payload(&self, payload: u64) -> Option<f64> {
        let mut total = 0.0f64;
        for round in &self.rounds {
            let mut t = 0.0f64;
            for (&(latency, rate), &(_, _, bytes_ref)) in
                round.profile.entries.iter().zip(&round.messages)
            {
                let bytes = self.scaled_bytes(bytes_ref, payload)?;
                t = t.max(latency + bytes as f64 / rate);
            }
            total += t;
        }
        Some(total)
    }

    /// Admissible lower bound at `payload` bytes: the envelope shaved by
    /// a 1e-9 relative guard band, so the bound never exceeds the exact
    /// replay despite their different floating-point association.
    pub fn bound_at(&self, payload: u64) -> f64 {
        self.envelope.value(payload as f64) * (1.0 - 1e-9)
    }
}

/// Sums per-round upper envelopes into one convex piecewise-linear
/// function: merge all hull breakpoints, then add the active
/// `(intercept, slope)` of every round on each merged segment.
fn sum_envelopes(hulls: &[Vec<HullPiece>]) -> PayloadEnvelope {
    let mut breakpoints: Vec<f64> = hulls
        .iter()
        .flat_map(|h| h.iter().skip(1).map(|p| p.start))
        .collect();
    breakpoints.sort_by(f64::total_cmp);
    breakpoints.dedup();
    let mut segments = Vec::with_capacity(breakpoints.len() + 1);
    // Per-hull cursor into its active piece; advance as segments start.
    let mut cursors = vec![0usize; hulls.len()];
    for k in 0..=breakpoints.len() {
        let seg_start = if k == 0 { 0.0 } else { breakpoints[k - 1] };
        let mut intercept = 0.0;
        let mut slope = 0.0;
        for (h, cursor) in hulls.iter().zip(cursors.iter_mut()) {
            while *cursor + 1 < h.len() && h[*cursor + 1].start <= seg_start {
                *cursor += 1;
            }
            intercept += h[*cursor].intercept;
            slope += h[*cursor].slope;
        }
        segments.push((intercept, slope));
    }
    PayloadEnvelope {
        breakpoints,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ContentionMode, LinkParams};
    use crate::schedule::{Message, Round};

    fn toy(mode: ContentionMode) -> NetworkModel {
        let h = mre_core::Hierarchy::new(vec![2, 2, 4]).unwrap();
        NetworkModel::new(
            h,
            vec![
                LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 1e-5,
                },
                LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1e-6,
                },
                LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 1e-7,
                },
            ],
            200.0,
        )
        .with_contention_mode(mode)
    }

    /// A two-round schedule whose message sizes are linear in `payload`.
    fn linear_schedule(payload: u64) -> Schedule {
        Schedule {
            rounds: vec![
                Round {
                    messages: vec![
                        Message::new(0, 8, payload),
                        Message::new(1, 9, payload / 2),
                        Message::new(4, 12, payload / 4),
                        Message::new(2, 2, payload / 8),
                    ],
                },
                Round {
                    messages: vec![Message::new(3, 6, payload), Message::new(5, 13, payload)],
                },
                Round { messages: vec![] },
            ],
        }
    }

    #[test]
    fn replay_is_bit_identical_to_schedule_time() {
        for mode in [ContentionMode::MaxMinFair, ContentionMode::EqualShare] {
            let net = toy(mode);
            let cache = SharedCostCache::new();
            let reference = 1 << 16;
            let sym =
                SymbolicScheduleCost::build(&net, &cache, &linear_schedule(reference), reference)
                    .unwrap();
            for payload in [1u64 << 8, 1 << 16, 1 << 20, 3 << 12] {
                let actual = linear_schedule(payload);
                assert!(sym.matches(&actual, payload));
                let exact = net.schedule_time(&actual);
                let replay = sym.time_at_payload(payload).unwrap();
                assert_eq!(exact.to_bits(), replay.to_bits());
            }
        }
    }

    #[test]
    fn envelope_tracks_exact_cost_and_bound_is_admissible() {
        let net = toy(ContentionMode::MaxMinFair);
        let cache = SharedCostCache::new();
        let reference = 1 << 16;
        let sym = SymbolicScheduleCost::build(&net, &cache, &linear_schedule(reference), reference)
            .unwrap();
        for payload in [1u64 << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 24] {
            let exact = net.schedule_time(&linear_schedule(payload));
            let env = sym.envelope().value(payload as f64);
            assert!(
                (env - exact).abs() <= 1e-12 * exact.abs().max(1e-300),
                "envelope {env} vs exact {exact} at payload {payload}"
            );
            assert!(sym.bound_at(payload) <= exact);
        }
    }

    #[test]
    fn mismatched_schedule_is_rejected() {
        let net = toy(ContentionMode::MaxMinFair);
        let cache = SharedCostCache::new();
        let reference = 1 << 16;
        let sym = SymbolicScheduleCost::build(&net, &cache, &linear_schedule(reference), reference)
            .unwrap();
        // Different endpoints.
        let mut flipped = linear_schedule(1 << 16);
        flipped.rounds[0].messages[0] = Message::new(0, 9, 1 << 16);
        assert!(!sym.matches(&flipped, 1 << 16));
        // Non-linear bytes (off by one from the prediction).
        let mut skewed = linear_schedule(1 << 18);
        skewed.rounds[1].messages[0].bytes += 1;
        assert!(!sym.matches(&skewed, 1 << 18));
        // Non-integer scaling: payload not divisible by the reference's
        // smallest fraction (payload/8 at reference ⇒ payload must keep
        // bytes·P/P_ref integral).
        assert!(!sym.matches(&linear_schedule(12345), 12345));
        assert!(sym.time_at_payload(3).is_none());
    }

    #[test]
    fn envelope_segments_are_convex() {
        let net = toy(ContentionMode::MaxMinFair);
        let cache = SharedCostCache::new();
        let reference = 1 << 16;
        let sym = SymbolicScheduleCost::build(&net, &cache, &linear_schedule(reference), reference)
            .unwrap();
        let env = sym.envelope();
        // Slopes non-decreasing left to right (convexity), value continuous
        // at breakpoints.
        for k in 1..env.segments.len() {
            assert!(env.segments[k].1 >= env.segments[k - 1].1);
            let x = env.breakpoints[k - 1];
            let left = env.segments[k - 1].0 + env.segments[k - 1].1 * x;
            let right = env.segments[k].0 + env.segments[k].1 * x;
            assert!((left - right).abs() <= 1e-9 * left.abs().max(1.0));
        }
    }

    #[test]
    fn build_shares_round_solves_through_the_cache() {
        let net = toy(ContentionMode::MaxMinFair);
        let cache = SharedCostCache::new();
        let reference = 1 << 16;
        let schedule = linear_schedule(reference);
        let a = SymbolicScheduleCost::build(&net, &cache, &schedule, reference).unwrap();
        let before = cache.cache_stats();
        let b = SymbolicScheduleCost::build(&net, &cache, &schedule, reference).unwrap();
        let after = cache.cache_stats();
        assert_eq!(after.misses, before.misses, "second build re-solved rounds");
        assert!(after.round_hits > before.round_hits);
        assert_eq!(
            a.time_at_payload(reference).unwrap().to_bits(),
            b.time_at_payload(reference).unwrap().to_bits()
        );
    }
}
