//! Fluid event-driven network simulation.
//!
//! The lockstep model ([`NetworkModel::concurrent_time`]) synchronizes
//! round `i` of every communicator — a pessimistic barrier that real MPI
//! does not have: independent communicators progress at their own pace and
//! only their *own* round structure orders their messages.
//!
//! The fluid simulator removes the cross-communicator barrier. Each
//! schedule is a job whose rounds execute in sequence; all messages of all
//! currently-active rounds share the network max-min fairly; whenever a
//! round completes (all its messages have transferred) the owning job
//! starts its next round and the rates are re-solved. This is the standard
//! fluid-flow approximation of packet networks, driven by completion
//! events.
//!
//! Latency is modeled as a per-message head delay during which the message
//! consumes no bandwidth.
//!
//! # The incremental engine
//!
//! [`FluidSim`] is the event-heap formulation of that model. The original
//! solver (kept verbatim as [`fluid_time_reference`], the property-test
//! oracle) rebuilds a `flows: Vec<Vec<usize>>` table, re-solves max-min
//! rates over *every* flight, and linearly scans all flights for the next
//! event — at *every* completion, O(events × flows × path-len). The
//! engine instead maintains all of it across events:
//!
//! * **Persistent link ↔ flow adjacency.** Each directed link keeps the
//!   list of flights currently consuming bandwidth through it (swap-remove
//!   with back-pointers, O(path) per join/retire) — the same per-link flow
//!   lists the incremental [`max_min_rates`] solver builds in CSR form,
//!   except never rebuilt. Rates are re-solved
//!   (a lazy-heap water-fill over the *active* links only) exclusively
//!   when the bandwidth-consuming flow set changes; events that touch only
//!   local copies solve nothing.
//! * **Memoized paths.** `(src, dst) → (crossing level, link path)` is
//!   computed once per endpoint pair and interned in an arena; collectives
//!   re-issue the same pairs round after round.
//! * **Solve-time prediction scan.** Each transferring flight carries its
//!   predicted finish; a solve re-predicts only the flights whose rate
//!   actually changed and tracks the minimum while it freezes them (the
//!   freeze pass visits every active flight exactly once, so the minimum
//!   costs nothing extra). Rates change *only* at solves, so that minimum
//!   stays valid until the next solve — no event needs to be queued per
//!   rate change. The event heap holds only *exact* events — latency
//!   expiries and fixed-rate local copies — which are never invalidated.
//!   (A versioned-heap variant that pushed a fresh completion event per
//!   rate change was tried first: on contended instances nearly every
//!   solve perturbs nearly every rate, and the ~O(events × flows) stale
//!   entries made the heap itself the bottleneck.) Events at the same
//!   instant are drained as one batch with a single re-solve, which
//!   collapses the per-message event storm of symmetric rounds.
//!
//! Tolerances are **relative**: a flight's residual byte count is snapped
//! to zero only below `payload × 1e-12`, and latency is tracked as an
//! absolute expiry time rather than a decremented remainder — the old
//! absolute `bytes_left <= 1e-9` retire check silently finished byte-scale
//! payloads on slow links early (see the regression test).
//!
//! Properties (tested):
//! * single schedule ⇒ identical to the round-based cost;
//! * multiple schedules ⇒ usually faster than the lockstep cost, and
//!   always at least the longest job's isolated cost. (Removing barriers
//!   is not a strict improvement: a barrier occasionally avoids convoy
//!   sharing, so tiny excesses over lockstep are possible and allowed.)
//! * work conservation: no traversed link is ever oversubscribed
//!   ([`FluidStats::peak_link_utilization`]);
//! * the engine agrees with [`fluid_time_reference`] to 1e-9 relative.

use crate::congestion::CongestionProbe;
use crate::contention::max_min_rates;
use crate::network::NetworkModel;
use crate::rail::RailLinkTable;
use crate::schedule::Schedule;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};

/// Residual-byte snap tolerance, relative to the flight's payload size.
const REL_BYTES_EPS: f64 = 1e-12;

const NO_POS: u32 = u32::MAX;

/// Tag bit marking a `busy_pos` entry as an index into `solo` rather
/// than `seed_cands`. `NO_POS` also has the bit set — test it first.
const SOLO_TAG: u32 = 1 << 31;

/// Counters of one or more [`FluidSim`] runs — how much work the engine
/// actually did, for benchmarks and regression attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FluidStats {
    /// Completion / latency-expiry events processed.
    pub events: u64,
    /// Max-min rate solves performed (≤ events: same-instant batches and
    /// local-copy-only events share or skip solves).
    pub solves: u64,
    /// Flights (messages) simulated.
    pub flights: u64,
    /// Finish-time re-predictions issued (rate changes observed by a
    /// solve); flights whose rate a solve left unchanged keep their
    /// existing prediction.
    pub repredictions: u64,
    /// Largest observed `allocated / capacity` over all links and solves —
    /// feasibility demands this never meaningfully exceeds 1.
    pub peak_link_utilization: f64,
}

/// One message's span in a fluid execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidMessageSpan {
    /// Index of the owning job (schedule) in the simulated batch.
    pub job: usize,
    /// Round index within the owning schedule.
    pub round: usize,
    /// Position of the message within its round.
    pub seq: usize,
    /// Sending core (global sequential id).
    pub src: usize,
    /// Receiving core (global sequential id).
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Simulated time the message was injected (= its round's start; a
    /// job's round `i + 1` starts exactly when its round `i` finishes).
    pub start: f64,
    /// Simulated time the last byte arrived.
    pub finish: f64,
    /// Hierarchy level of the outermost coordinate difference between the
    /// endpoints (`None` for self-messages, which use the local copy rate).
    pub crossing: Option<usize>,
    /// Rail the message occupied on its crossing-level sender-side uplink
    /// (`None` for self-messages; always `Some(0)` on single-rail models).
    pub rail: Option<usize>,
}

impl FluidMessageSpan {
    /// Wall duration of the message on the simulated clock.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// The full per-message temporal reconstruction of a fluid execution —
/// the barrier-free counterpart of
/// [`ScheduleTimeline`](crate::timeline::ScheduleTimeline). Unlike the
/// lockstep timeline, rounds of *different* jobs overlap freely; within a
/// job, rounds still execute in sequence (span starts are round starts).
#[derive(Debug, Clone, PartialEq)]
pub struct FluidTimeline {
    /// All message spans, sorted by `(job, round, seq)`.
    pub spans: Vec<FluidMessageSpan>,
    /// The simulated makespan — identical to [`fluid_time`] of the same
    /// inputs (and equal to the last span's finish when any span exists).
    pub makespan: f64,
    /// Engine work counters of this run.
    pub stats: FluidStats,
}

impl FluidTimeline {
    /// Largest span finish (0 when there are no spans).
    pub fn last_finish(&self) -> f64 {
        self.spans.iter().map(|s| s.finish).fold(0.0, f64::max)
    }

    /// Number of simulated messages.
    pub fn num_messages(&self) -> usize {
        self.spans.len()
    }

    /// Sum of payload bytes over all spans.
    pub fn total_bytes(&self) -> u64 {
        self.spans.iter().map(|s| s.bytes).sum()
    }

    /// Spans of one job, in `(round, seq)` order.
    pub fn job_spans(&self, job: usize) -> impl Iterator<Item = &FluidMessageSpan> {
        self.spans.iter().filter(move |s| s.job == job)
    }

    /// Number of jobs that contributed at least one span.
    pub fn num_jobs(&self) -> usize {
        self.spans.iter().map(|s| s.job + 1).max().unwrap_or(0)
    }
}

/// An *exact* event — a latency expiry or a fixed-rate local-copy
/// completion. Link-crossing completions are found by the prediction
/// scan instead, because their times shift with every rate solve.
#[derive(Debug, Clone, Copy)]
struct Ev {
    time: f64,
    flight: u32,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.flight.cmp(&other.flight))
    }
}

/// A water-fill heap candidate (the lazy-heap design of
/// [`max_min_rates`], reused for the per-event re-solves). The heap
/// holds at most one entry per link, so staleness needs no version
/// counter: a popped entry whose share no longer matches the link's
/// current `remaining / wcount` is simply re-pushed up to date (shares
/// only grow as flows freeze, so the pop order stays correct).
#[derive(Debug, Clone, Copy)]
struct Candidate {
    share: f64,
    link: u32,
}

/// Per-link state, packed for cache locality — the water-fill freeze
/// pass hits `remaining`/`wcount` at random link indices, hot.
#[derive(Debug, Clone, Copy)]
struct LinkState {
    /// Unallocated capacity (water-fill scratch).
    remaining: f64,
    /// Link capacity (fixed at interning).
    capacity: f64,
    /// Unfrozen flows still traversing the link (water-fill scratch).
    wcount: u32,
    /// Current number of flows through the link — `link_flows[l].len()`,
    /// mirrored here so solve seeding never chases the `Vec` header.
    nflows: u32,
    /// Solve epoch of the scratch fields; a solve resets them lazily on
    /// first touch instead of sweeping every busy link up front.
    epoch: u64,
}

/// Lazily resets a link's water-fill scratch at its first touch in the
/// solve of `epoch`.
#[inline]
fn fresh(ls: &mut LinkState, epoch: u64) {
    if ls.epoch != epoch {
        ls.epoch = epoch;
        ls.remaining = ls.capacity;
        ls.wcount = ls.nflows;
    }
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.share
            .total_cmp(&other.share)
            .then_with(|| self.link.cmp(&other.link))
    }
}

/// Cold per-flight state: identity, payload, and bookkeeping that only
/// join/leave/retire touch. The fields the per-solve freeze pass and the
/// completion prediction scan sweep live in [`FlightHot`] instead, so
/// those hot loops pull one packed cache line per flight.
struct Flight {
    job: u32,
    round: u32,
    seq: u32,
    src: u32,
    dst: u32,
    bytes: u64,
    /// Crossing level, or -1 for a self-message.
    crossing: i32,
    /// Injection time (the owning round's start), for the timeline.
    injected: f64,
    /// Range into the per-run `link_pos` arena: position of this flight
    /// in `link_flows[path[k]]`, for each path slot `k`.
    lp_start: u32,
    /// Position in the `transferring` list (NO_POS while not in it).
    tpos: u32,
    /// True until the head latency expires (no bandwidth consumed).
    in_latency: bool,
    alive: bool,
}

/// Hot per-flight state, indexed in lockstep with `flights`: everything
/// the water-fill freeze pass reads or writes per flight, packed into 48
/// bytes.
#[derive(Clone, Copy)]
struct FlightHot {
    /// Current allocated rate; local copies carry the local rate, flights
    /// awaiting their first solve carry -1 (never folded).
    rate: f64,
    /// Remaining payload bytes as of `last_update`.
    bytes_left: f64,
    /// Simulated time `bytes_left` was last folded.
    last_update: f64,
    /// Predicted finish as of the last solve that changed the rate; valid
    /// only while the flight is transferring (rates change only at
    /// solves, so the prediction holds until the next one).
    predicted: f64,
    /// Absolute byte-snap threshold, `bytes * REL_BYTES_EPS` precomputed.
    snap: f64,
    /// Range into the path arena (dense directed-link indices).
    path_start: u32,
    path_len: u32,
    /// Solve epoch that froze this flight last (the visited-mark of the
    /// freeze pass), kept inside the hot record so the pass touches one
    /// cache line per flight. `u32` with a clear-on-wrap guard in
    /// [`FluidSim::fill`].
    epoch: u32,
}

/// The persistent incremental fluid engine. Construct once per network
/// model and [`run`](Self::run) any number of schedule batches — the
/// interned link table and the memoized `(src, dst) → path` cache survive
/// across runs, which is what a cost oracle evaluated thousands of times
/// by an order sweep wants. [`stats`](Self::stats) accumulates over all
/// runs.
pub struct FluidSim<'a> {
    net: &'a NetworkModel,
    strides: Vec<usize>,
    local_rate: f64,
    /// The level-major directed rail-link table built by
    /// [`new`](Self::new): the id of `(level, instance, up, rail)` is
    /// `level_offset[level] + (2·instance + up)·rails[level] + rail`.
    /// Outer levels get the low ids, so the shared links every solve
    /// touches sit in one dense cache-hot prefix of
    /// [`lstate`](Self::lstate) while the per-core leaf links (numerous,
    /// almost always solo) fill the tail. At one rail per level the ids
    /// are bit-identical to the pre-rail layout.
    table: RailLinkTable,
    /// Per-link capacity, flow count, and water-fill scratch.
    lstate: Vec<LinkState>,
    path_cache: HashMap<(u32, u32), (i32, u32, u32)>,
    path_arena: Vec<u32>,
    // Per-run simulation state.
    flights: Vec<Flight>,
    /// Hot freeze-pass fields, parallel to `flights`.
    flights_hot: Vec<FlightHot>,
    events: BinaryHeap<Reverse<Ev>>,
    /// Per-link active flights: `(flight id, slot in its path)`.
    link_flows: Vec<Vec<(u32, u32)>>,
    /// One up-to-date seed candidate (`capacity / nflows`) per *shared*
    /// busy link (two or more flows), maintained incrementally at
    /// join/leave so a solve only memcpys and heapifies instead of
    /// sweeping every busy link.
    seed_cands: Vec<Reverse<Candidate>>,
    /// Busy links carrying exactly one flow, kept out of the solve seed:
    /// on fabrics with fat endpoint links they are the bulk of the busy
    /// set yet almost never bind. A solo link *can* bind only at a
    /// water level at or above its capacity, so a fill whose shares all
    /// stay below [`solo_cap_min`](Self::solo_cap_min) is exact without
    /// them; otherwise [`fill`](Self::fill) restarts with the full seed.
    solo: Vec<u32>,
    /// Conservative (never raised between full fills) lower bound on the
    /// capacities of the links in `solo`.
    solo_cap_min: f64,
    /// Per-link position in `seed_cands` (shared links), or in `solo`
    /// tagged with [`SOLO_TAG`] (solo links), or [`NO_POS`] (idle links).
    busy_pos: Vec<u32>,
    /// Flights currently consuming bandwidth (swap-remove list).
    transferring: Vec<u32>,
    /// Back-pointer arena for `Flight::lp_start` ranges.
    link_pos: Vec<u32>,
    /// Minimum predicted finish over `transferring`, maintained by
    /// [`resolve`](Self::resolve); infinite when nothing transfers.
    next_completion: f64,
    /// Scratch for collecting the flights of one completion batch.
    completions: Vec<u32>,
    outstanding: Vec<usize>,
    next_round: Vec<usize>,
    // Water-fill scratch epoch (also stamped into `FlightHot` / link
    // state so per-solve resets are lazy).
    epoch: u64,
    cheap: BinaryHeap<Reverse<Candidate>>,
    stats: FluidStats,
}

impl<'a> FluidSim<'a> {
    /// Builds an engine over `net` with empty caches.
    pub fn new(net: &'a NetworkModel) -> Self {
        // Pre-intern every directed rail-link level-major (outermost
        // first): ids become pure arithmetic and the busy shared links
        // cluster at the front of `lstate` instead of interleaving with
        // the per-core links in path-discovery order.
        let size = net.hierarchy().size();
        let strides = net.hierarchy().strides();
        let table = RailLinkTable::new(size, &strides, net.rail_counts(), net.rail_policy());
        let mut lstate = Vec::with_capacity(table.num_links());
        for (level, &stride) in strides.iter().enumerate() {
            let capacity = net.links()[level].uplink_bandwidth;
            let count = 2 * (size / stride) * net.rail_counts()[level];
            lstate.extend((0..count).map(|_| LinkState {
                remaining: 0.0,
                capacity,
                wcount: 0,
                nflows: 0,
                epoch: 0,
            }));
        }
        debug_assert_eq!(lstate.len(), table.num_links());
        let links = lstate.len();
        Self {
            net,
            strides,
            local_rate: net.calibrated_local_rate(),
            table,
            lstate,
            path_cache: HashMap::new(),
            path_arena: Vec::new(),
            flights: Vec::new(),
            flights_hot: Vec::new(),
            events: BinaryHeap::new(),
            link_flows: vec![Vec::new(); links],
            seed_cands: Vec::new(),
            solo: Vec::new(),
            solo_cap_min: f64::INFINITY,
            busy_pos: vec![NO_POS; links],
            transferring: Vec::new(),
            link_pos: Vec::new(),
            next_completion: f64::INFINITY,
            completions: Vec::new(),
            outstanding: Vec::new(),
            next_round: Vec::new(),
            epoch: 0,
            cheap: BinaryHeap::new(),
            stats: FluidStats::default(),
        }
    }

    /// Work counters accumulated over every run of this engine.
    pub fn stats(&self) -> FluidStats {
        self.stats
    }

    /// Simulates `schedules` concurrently (no cross-schedule barriers) and
    /// returns the makespan. Semantics are identical to
    /// [`fluid_time_reference`] up to floating-point reassociation.
    pub fn run(&mut self, schedules: &[Schedule]) -> f64 {
        self.execute(schedules, None, None)
    }

    /// Like [`run`](Self::run), but feeds `probe` a piecewise-constant
    /// per-link allocated-rate timeline: rates only change at water-fill
    /// solves, so snapshotting the allocation at every solve (and a final
    /// zero-allocation snapshot when the last flow drains) reproduces the
    /// engine's exact byte flow per link. The returned makespan is
    /// bit-identical to the unprobed [`run`](Self::run).
    pub fn run_probed(&mut self, schedules: &[Schedule], probe: &mut CongestionProbe) -> f64 {
        debug_assert_eq!(
            probe.num_links(),
            self.table.num_links(),
            "probe built for a different network model"
        );
        self.execute(schedules, None, Some(probe))
    }

    /// Like [`run`](Self::run), but records every message's span.
    pub fn run_timeline(&mut self, schedules: &[Schedule]) -> FluidTimeline {
        let before = self.stats;
        let mut spans = Vec::new();
        let makespan = self.execute(schedules, Some(&mut spans), None);
        spans.sort_by_key(|a| (a.job, a.round, a.seq));
        let after = self.stats;
        FluidTimeline {
            spans,
            makespan,
            stats: FluidStats {
                events: after.events - before.events,
                solves: after.solves - before.solves,
                flights: after.flights - before.flights,
                repredictions: after.repredictions - before.repredictions,
                peak_link_utilization: after.peak_link_utilization,
            },
        }
    }

    fn execute(
        &mut self,
        schedules: &[Schedule],
        mut record: Option<&mut Vec<FluidMessageSpan>>,
        mut probe: Option<&mut CongestionProbe>,
    ) -> f64 {
        let before = self.stats;
        // Reset per-run state; caches persist.
        self.flights.clear();
        self.flights_hot.clear();
        self.events.clear();
        let shared = self.seed_cands.iter().map(|&Reverse(c)| c.link);
        for l in shared.chain(self.solo.iter().copied()) {
            self.link_flows[l as usize].clear();
            self.lstate[l as usize].nflows = 0;
            self.busy_pos[l as usize] = NO_POS;
        }
        self.seed_cands.clear();
        self.solo.clear();
        self.solo_cap_min = f64::INFINITY;
        self.transferring.clear();
        self.link_pos.clear();
        self.next_completion = f64::INFINITY;
        self.outstanding.clear();
        self.outstanding.resize(schedules.len(), 0);
        self.next_round.clear();
        self.next_round.resize(schedules.len(), 0);

        let mut needs = false;
        for job in 0..schedules.len() {
            needs |= self.start_round(job, schedules, 0.0);
        }
        if needs && !self.transferring.is_empty() {
            self.resolve(0.0);
        }
        if needs {
            if let Some(p) = probe.as_deref_mut() {
                self.feed_probe(p, 0.0);
            }
        }
        let mut now = 0.0f64;
        loop {
            let heap_next = self
                .events
                .peek()
                .map_or(f64::INFINITY, |&Reverse(ev)| ev.time);
            let t = heap_next.min(self.next_completion);
            if !t.is_finite() {
                break;
            }
            now = t;
            let mut needs = false;
            // Drain every event at this instant as one batch, then solve
            // once; symmetric rounds complete as a single batch.
            while let Some(&Reverse(ev)) = self.events.peek() {
                if ev.time > now {
                    break;
                }
                self.events.pop();
                self.stats.events += 1;
                needs |= self.process(ev.flight, now, schedules, &mut record);
            }
            if self.next_completion <= now {
                // Link-crossing completions of this instant, from the
                // prediction scan (every prediction is ≥ `now`, so the
                // comparison is exact).
                self.completions.clear();
                for &fid in &self.transferring {
                    if self.flights_hot[fid as usize].predicted <= now {
                        self.completions.push(fid);
                    }
                }
                self.completions.sort_unstable();
                let batch = std::mem::take(&mut self.completions);
                for &fid in &batch {
                    self.stats.events += 1;
                    self.complete(fid, now, schedules, &mut record);
                }
                self.completions = batch;
                self.next_completion = f64::INFINITY;
                needs = true;
            }
            if needs && !self.transferring.is_empty() {
                self.resolve(now);
            }
            if needs {
                if let Some(p) = probe.as_deref_mut() {
                    self.feed_probe(p, now);
                }
            }
        }
        if let Some(p) = probe {
            p.fluid_finish(now);
        }
        debug_assert!(self.flights.iter().all(|f| !f.alive));
        if mre_core::telemetry::enabled() {
            mre_core::telemetry::counter_add("simnet.fluid.runs", 1);
            mre_core::telemetry::counter_add(
                "simnet.fluid.events",
                self.stats.events - before.events,
            );
            mre_core::telemetry::counter_add(
                "simnet.fluid.solves",
                self.stats.solves - before.solves,
            );
            mre_core::telemetry::counter_add(
                "simnet.fluid.flights",
                self.stats.flights - before.flights,
            );
        }
        now
    }

    /// Snapshots the current per-link allocation into `probe` at `now`:
    /// closes the epoch opened at the previous solve and declares every
    /// transferring flight's frozen rate on every link of its path. Called
    /// only when a probe is attached and the flow set changed — the
    /// unprobed path pays a single `Option` check per event batch.
    fn feed_probe(&self, probe: &mut CongestionProbe, now: f64) {
        probe.fluid_solve_begin(now);
        for &fid in &self.transferring {
            let f = &self.flights_hot[fid as usize];
            if f.rate <= 0.0 {
                continue;
            }
            let path = &self.path_arena[f.path_start as usize..][..f.path_len as usize];
            for &l in path {
                probe.fluid_add(l, f.rate);
            }
        }
    }

    /// Handles one heap event — a latency expiry or a local-copy
    /// completion; returns whether the bandwidth-consuming flow set
    /// changed (⇒ rates need re-solving).
    fn process(
        &mut self,
        flight: u32,
        now: f64,
        schedules: &[Schedule],
        record: &mut Option<&mut Vec<FluidMessageSpan>>,
    ) -> bool {
        let fi = flight as usize;
        if self.flights[fi].in_latency {
            // Head latency expired: join the bandwidth-consuming set. The
            // rate stays at the -1 sentinel until the batch's solve.
            self.flights[fi].in_latency = false;
            self.flights_hot[fi].last_update = now;
            self.join_links(flight);
            return true;
        }
        self.complete(flight, now, schedules, record)
    }

    /// Retires a finished flight; returns whether the bandwidth-consuming
    /// flow set changed.
    fn complete(
        &mut self,
        flight: u32,
        now: f64,
        schedules: &[Schedule],
        record: &mut Option<&mut Vec<FluidMessageSpan>>,
    ) -> bool {
        let fi = flight as usize;
        let used_links = self.flights_hot[fi].path_len > 0;
        let net = self.net;
        let f = &mut self.flights[fi];
        f.alive = false;
        let job = f.job as usize;
        if let Some(rec) = record.as_deref_mut() {
            let (src, dst, crossing) = (f.src as usize, f.dst as usize, f.crossing);
            rec.push(FluidMessageSpan {
                job,
                round: f.round as usize,
                seq: f.seq as usize,
                src,
                dst,
                bytes: f.bytes,
                start: f.injected,
                finish: now,
                crossing: (crossing >= 0).then_some(crossing as usize),
                rail: (crossing >= 0).then(|| net.message_rail(crossing as usize, src, dst, true)),
            });
        }
        if used_links {
            self.leave_links(flight);
        }
        self.outstanding[job] -= 1;
        let mut needs = used_links;
        if self.outstanding[job] == 0 {
            needs |= self.start_round(job, schedules, now);
        }
        needs
    }

    /// Starts the owning job's next non-empty round (if any) at `now`;
    /// returns whether any new flight joined the link fabric immediately.
    fn start_round(&mut self, job: usize, schedules: &[Schedule], now: f64) -> bool {
        let schedule = &schedules[job];
        while self.next_round[job] < schedule.rounds.len() {
            let round_idx = self.next_round[job];
            self.next_round[job] += 1;
            let round = &schedule.rounds[round_idx];
            if round.messages.is_empty() {
                continue;
            }
            let mut joined = false;
            for (seq, m) in round.messages.iter().enumerate() {
                let (crossing, path_start, path_len) = self.intern_path(m.src, m.dst);
                let latency = if crossing >= 0 {
                    self.net.links()[crossing as usize].crossing_latency
                } else {
                    0.0
                };
                let id = self.flights.len() as u32;
                let lp_start = self.link_pos.len() as u32;
                self.link_pos
                    .resize(lp_start as usize + path_len as usize, NO_POS);
                let mut flight = Flight {
                    job: job as u32,
                    round: round_idx as u32,
                    seq: seq as u32,
                    src: m.src as u32,
                    dst: m.dst as u32,
                    bytes: m.bytes,
                    crossing,
                    injected: now,
                    lp_start,
                    tpos: NO_POS,
                    in_latency: false,
                    alive: true,
                };
                let mut hot = FlightHot {
                    rate: -1.0,
                    bytes_left: m.bytes as f64,
                    last_update: now,
                    predicted: f64::INFINITY,
                    snap: m.bytes as f64 * REL_BYTES_EPS,
                    path_start,
                    path_len,
                    epoch: 0,
                };
                self.stats.flights += 1;
                self.outstanding[job] += 1;
                if path_len == 0 {
                    // Local copy: a fixed rate, so its single completion
                    // event is exact and it never participates in solves.
                    hot.rate = self.local_rate;
                    let finish = now + latency + m.bytes as f64 / self.local_rate;
                    self.flights.push(flight);
                    self.flights_hot.push(hot);
                    self.events.push(Reverse(Ev {
                        time: finish,
                        flight: id,
                    }));
                } else if latency > 0.0 {
                    // Latency phase: tracked as an absolute expiry time
                    // (no decrement-and-clamp).
                    flight.in_latency = true;
                    self.flights.push(flight);
                    self.flights_hot.push(hot);
                    self.events.push(Reverse(Ev {
                        time: now + latency,
                        flight: id,
                    }));
                } else {
                    self.flights.push(flight);
                    self.flights_hot.push(hot);
                    self.join_links(id);
                    joined = true;
                }
            }
            return joined;
        }
        false
    }

    /// Memoized `(src, dst) → (crossing, path arena range)`.
    fn intern_path(&mut self, src: usize, dst: usize) -> (i32, u32, u32) {
        let key = (src as u32, dst as u32);
        if let Some(&entry) = self.path_cache.get(&key) {
            return entry;
        }
        let entry = if src == dst {
            (-1, 0, 0)
        } else {
            let k = self.strides.len();
            let j = self
                .strides
                .iter()
                .position(|&s| src / s != dst / s)
                .expect("distinct cores differ at some level");
            let start = self.path_arena.len() as u32;
            for level in j..k {
                for up in [true, false] {
                    self.path_arena
                        .push(self.table.message_link(level, src, dst, up));
                }
            }
            (j as i32, start, (2 * (k - j)) as u32)
        };
        self.path_cache.insert(key, entry);
        entry
    }

    fn join_links(&mut self, flight: u32) {
        let fi = flight as usize;
        let (start, len, lp) = (
            self.flights_hot[fi].path_start as usize,
            self.flights_hot[fi].path_len as usize,
            self.flights[fi].lp_start as usize,
        );
        for slot in 0..len {
            let l = self.path_arena[start + slot] as usize;
            let pos = self.link_flows[l].len() as u32;
            self.link_flows[l].push((flight, slot as u32));
            self.link_pos[lp + slot] = pos;
            let ls = &mut self.lstate[l];
            ls.nflows += 1;
            let (nf, cap) = (ls.nflows, ls.capacity);
            match nf {
                1 => {
                    // Idle → solo: tracked outside the seed.
                    self.busy_pos[l] = SOLO_TAG | self.solo.len() as u32;
                    self.solo.push(l as u32);
                    if cap < self.solo_cap_min {
                        self.solo_cap_min = cap;
                    }
                }
                2 => {
                    // Solo → shared: move into the seed candidates.
                    let sp = (self.busy_pos[l] & !SOLO_TAG) as usize;
                    self.solo.swap_remove(sp);
                    if let Some(&moved) = self.solo.get(sp) {
                        self.busy_pos[moved as usize] = SOLO_TAG | sp as u32;
                    }
                    self.busy_pos[l] = self.seed_cands.len() as u32;
                    self.seed_cands.push(Reverse(Candidate {
                        share: cap / 2.0,
                        link: l as u32,
                    }));
                }
                n => {
                    self.seed_cands[self.busy_pos[l] as usize] = Reverse(Candidate {
                        share: cap / n as f64,
                        link: l as u32,
                    });
                }
            }
        }
        self.flights[fi].tpos = self.transferring.len() as u32;
        self.transferring.push(flight);
    }

    fn leave_links(&mut self, flight: u32) {
        let fi = flight as usize;
        let (start, len, lp) = (
            self.flights_hot[fi].path_start as usize,
            self.flights_hot[fi].path_len as usize,
            self.flights[fi].lp_start as usize,
        );
        for slot in 0..len {
            let l = self.path_arena[start + slot] as usize;
            let pos = self.link_pos[lp + slot] as usize;
            self.link_flows[l].swap_remove(pos);
            if let Some(&(moved, moved_slot)) = self.link_flows[l].get(pos) {
                let moved = &self.flights[moved as usize];
                self.link_pos[moved.lp_start as usize + moved_slot as usize] = pos as u32;
            }
            let ls = &mut self.lstate[l];
            ls.nflows -= 1;
            let (nf, cap) = (ls.nflows, ls.capacity);
            match nf {
                0 => {
                    // Solo → idle: swap-remove from the solo list.
                    let sp = (self.busy_pos[l] & !SOLO_TAG) as usize;
                    self.solo.swap_remove(sp);
                    if let Some(&moved) = self.solo.get(sp) {
                        self.busy_pos[moved as usize] = SOLO_TAG | sp as u32;
                    }
                    self.busy_pos[l] = NO_POS;
                }
                1 => {
                    // Shared → solo: swap-remove from the seed, fixing
                    // the moved candidate's back-pointer.
                    let bp = self.busy_pos[l] as usize;
                    self.seed_cands.swap_remove(bp);
                    if let Some(&Reverse(moved_c)) = self.seed_cands.get(bp) {
                        self.busy_pos[moved_c.link as usize] = bp as u32;
                    }
                    self.busy_pos[l] = SOLO_TAG | self.solo.len() as u32;
                    self.solo.push(l as u32);
                    if cap < self.solo_cap_min {
                        self.solo_cap_min = cap;
                    }
                }
                n => {
                    self.seed_cands[self.busy_pos[l] as usize] = Reverse(Candidate {
                        share: cap / n as f64,
                        link: l as u32,
                    });
                }
            }
        }
        // Swap-remove from the transferring list, fixing the moved flight.
        let tp = self.flights[fi].tpos as usize;
        self.transferring.swap_remove(tp);
        if let Some(&moved) = self.transferring.get(tp) {
            self.flights[moved as usize].tpos = tp as u32;
        }
        self.flights[fi].tpos = NO_POS;
    }

    /// Water-fills the active flow set (lazy candidate heap over busy
    /// links, exactly the incremental `max_min_rates` discipline),
    /// re-predicts only the flights whose rate changed, and tracks the
    /// minimum predicted finish while freezing — the freeze pass visits
    /// every transferring flight exactly once, so [`next_completion`]
    /// comes out for free.
    ///
    /// [`next_completion`]: Self::next_completion
    fn resolve(&mut self, now: f64) {
        self.stats.solves += 1;
        // Fast path: fill without the solo links. Exact whenever every
        // assigned share stays below the smallest solo capacity (a solo
        // link cannot bind below its own capacity); otherwise fall back
        // to a fill over the full busy set.
        if !self.fill(now, true) {
            let ok = self.fill(now, false);
            debug_assert!(ok, "full-seed fill cannot run dry");
        }
    }

    /// One water-fill over the active flow set. With `fast`, solo links
    /// are left out of the seed and the fill aborts (returning `false`)
    /// as soon as a share at or above [`solo_cap_min`](Self::solo_cap_min)
    /// would freeze — the caller then re-runs with the full seed, which
    /// is idempotent: the aborted attempt only folded byte counts at
    /// their genuine old rates and re-folding over a zero interval is a
    /// no-op.
    fn fill(&mut self, now: f64, fast: bool) -> bool {
        self.epoch += 1;
        if self.epoch as u32 == 0 {
            // The truncated stamp wrapped (once per 2³² solves): clear
            // the per-flight marks so pre-wrap stamps cannot alias, and
            // skip the zero stamp new flights are born with.
            for f in &mut self.flights_hot {
                f.epoch = 0;
            }
            self.epoch += 1;
        }
        // Seed from the incrementally-maintained per-link candidates: one
        // memcpy plus an O(n) heapify; per-link scratch resets lazily on
        // first touch (`fresh`) instead of an up-front sweep.
        let mut seeds = std::mem::take(&mut self.cheap).into_vec();
        seeds.clear();
        seeds.extend_from_slice(&self.seed_cands);
        let guard = if fast {
            self.solo_cap_min
        } else {
            // Full seed: include every solo link (share = capacity) and
            // refresh the conservative capacity floor to the true
            // minimum while walking the list.
            let mut true_min = f64::INFINITY;
            for &l in &self.solo {
                let cap = self.lstate[l as usize].capacity;
                true_min = true_min.min(cap);
                seeds.push(Reverse(Candidate {
                    share: cap,
                    link: l,
                }));
            }
            self.solo_cap_min = true_min;
            f64::INFINITY
        };
        self.cheap = BinaryHeap::from(seeds);
        let epoch = self.epoch;
        let epoch32 = epoch as u32;
        let mut batch_min = f64::INFINITY;
        let mut active = self.transferring.len();
        let mut complete = true;
        // Split borrows once so the freeze pass keeps every base pointer
        // in a register (no reload after the heap pushes).
        let Self {
            ref mut lstate,
            ref link_flows,
            ref mut flights_hot,
            ref path_arena,
            ref mut cheap,
            ref mut stats,
            ..
        } = *self;
        'fill: while active > 0 {
            let Some(Reverse(c)) = cheap.pop() else {
                // Fast seed ran dry with flows unfrozen: every link of
                // those flows is solo, so one of them must bind.
                debug_assert!(fast);
                complete = false;
                break 'fill;
            };
            let l = c.link as usize;
            let ls = &mut lstate[l];
            fresh(ls, epoch);
            let ls = *ls;
            if ls.wcount == 0 {
                continue;
            }
            let share = ls.remaining.max(0.0) / ls.wcount as f64;
            if share != c.share {
                // Stale (the link lost flows since this entry was pushed,
                // so its true share only grew): revalidate lazily with
                // one up-to-date re-push instead of eagerly pushing on
                // every decrement. The heap keeps ≤ 1 entry per link.
                cheap.push(Reverse(Candidate {
                    share,
                    link: c.link,
                }));
                continue;
            }
            if share >= guard {
                // A solo link may bind at or below this water level
                // (ties included, to keep the full fill's freeze order
                // authoritative): restart with the full seed.
                complete = false;
                break 'fill;
            }
            debug_assert!(share.is_finite());
            for &(fid, _) in &link_flows[l] {
                let f = &mut flights_hot[fid as usize];
                if f.epoch == epoch32 {
                    continue;
                }
                f.epoch = epoch32;
                active -= 1;
                if f.rate != share {
                    // Fold progress at the old rate, then re-predict.
                    if f.rate > 0.0 {
                        f.bytes_left -= f.rate * (now - f.last_update);
                    }
                    if f.bytes_left < f.snap {
                        f.bytes_left = 0.0;
                    }
                    f.last_update = now;
                    f.rate = share;
                    f.predicted = now + f.bytes_left / share;
                    stats.repredictions += 1;
                }
                if f.predicted < batch_min {
                    batch_min = f.predicted;
                }
                let (ps, pl) = (f.path_start as usize, f.path_len as usize);
                for &link in &path_arena[ps..ps + pl] {
                    let ls = &mut lstate[link as usize];
                    if fast && ls.nflows == 1 {
                        // Solo links are unseeded in the fast fill, so
                        // their scratch is never read: skip the update.
                        continue;
                    }
                    fresh(ls, epoch);
                    ls.remaining -= share;
                    ls.wcount -= 1;
                }
            }
            debug_assert_eq!(lstate[l].wcount, 0, "bottleneck link fully drained");
            // Feasibility bookkeeping: the popped bottleneck ends fully
            // drained, so `capacity − remaining` is exactly its allocated
            // total — and bottlenecks dominate the utilization maximum
            // (links left unsaturated keep `remaining > 0`).
            let ls = lstate[l];
            let util = (ls.capacity - ls.remaining) / ls.capacity;
            if util > stats.peak_link_utilization {
                stats.peak_link_utilization = util;
            }
        }
        if complete {
            self.next_completion = batch_min;
        }
        complete
    }
}

/// Simulates `schedules` concurrently without cross-schedule barriers and
/// returns the makespan (the time at which every schedule has finished).
///
/// Every schedule keeps its internal round ordering: round `i+1` of a
/// schedule starts only when all messages of its round `i` have been
/// delivered.
///
/// This is the incremental [`FluidSim`] engine; use it directly to reuse
/// link/path caches across many evaluations. [`fluid_time_reference`] is
/// the original per-event-rebuild solver, kept as the oracle.
pub fn fluid_time(net: &NetworkModel, schedules: &[Schedule]) -> f64 {
    FluidSim::new(net).run(schedules)
}

/// [`fluid_time`] plus the engine's work counters.
pub fn fluid_time_with_stats(net: &NetworkModel, schedules: &[Schedule]) -> (f64, FluidStats) {
    let mut sim = FluidSim::new(net);
    let t = sim.run(schedules);
    (t, sim.stats())
}

/// Reconstructs the per-message spans of the fluid execution — the data
/// source for fluid traces, critical paths and trace diffing (see
/// `mre-trace`). `timeline.makespan` equals [`fluid_time`] of the same
/// inputs.
pub fn fluid_timeline(net: &NetworkModel, schedules: &[Schedule]) -> FluidTimeline {
    FluidSim::new(net).run_timeline(schedules)
}

/// A pool of persistent [`FluidSim`] engines shared by concurrent sweep
/// workers.
///
/// A `FluidSim` already keeps its link table, path cache and event heaps
/// alive across [`run`](FluidSim::run) calls; what the sweep loops lacked
/// was a way for several workers to *reuse* engines instead of each
/// `fluid_time` call constructing one. `SimPool` holds one engine per
/// expected worker behind a mutex; [`run`](Self::run) grabs the first
/// free engine (falling back to waiting on engine 0 when all are busy,
/// which cannot deadlock — runs never nest). Results are bit-identical to
/// fresh engines: `run` resets all per-run state and the persistent
/// caches memoize pure functions of the network model.
pub struct SimPool<'a> {
    sims: Vec<std::sync::Mutex<FluidSim<'a>>>,
}

impl<'a> SimPool<'a> {
    /// A pool of `engines` persistent simulators over `net` (at least 1).
    pub fn new(net: &'a NetworkModel, engines: usize) -> Self {
        Self {
            sims: (0..engines.max(1))
                .map(|_| std::sync::Mutex::new(FluidSim::new(net)))
                .collect(),
        }
    }

    /// [`fluid_time`] on a pooled engine: simulates `schedules`
    /// concurrently and returns the makespan.
    pub fn run(&self, schedules: &[Schedule]) -> f64 {
        for sim in &self.sims {
            if let Ok(mut sim) = sim.try_lock() {
                return sim.run(schedules);
            }
        }
        // All engines busy (more workers than engines): wait for one.
        let mut sim = self.sims[0].lock().expect("fluid engine lock poisoned");
        sim.run(schedules)
    }

    /// Work counters summed over every engine in the pool (peak link
    /// utilization is the max across engines).
    pub fn stats(&self) -> FluidStats {
        let mut total = FluidStats::default();
        for sim in &self.sims {
            let s = sim.lock().expect("fluid engine lock poisoned").stats();
            total.events += s.events;
            total.solves += s.solves;
            total.flights += s.flights;
            total.repredictions += s.repredictions;
            total.peak_link_utilization = total.peak_link_utilization.max(s.peak_link_utilization);
        }
        total
    }
}

/// State of one in-flight message (reference solver).
struct RefFlight {
    job: usize,
    latency_left: f64,
    bytes_left: f64,
    path: Vec<usize>,
    local_rate: f64,
}

/// Dense directed-link table of the reference solver. Keys carry the rail
/// axis ([`NetworkModel::message_rail`]); on single-rail models the rail
/// is constantly 0 and the interning — hence every solved rate — is
/// identical to the pre-rail table.
struct RefLinkTable<'a> {
    net: &'a NetworkModel,
    strides: Vec<usize>,
    index: HashMap<(usize, usize, bool, usize), usize>,
    capacities: Vec<f64>,
}

impl<'a> RefLinkTable<'a> {
    fn new(net: &'a NetworkModel) -> Self {
        Self {
            net,
            strides: net.hierarchy().strides(),
            index: HashMap::new(),
            capacities: Vec::new(),
        }
    }

    /// (crossing level, dense link path) of a message.
    fn path(&mut self, src: usize, dst: usize) -> (Option<usize>, Vec<usize>) {
        if src == dst {
            return (None, Vec::new());
        }
        let k = self.net.hierarchy().depth();
        let j = self
            .strides
            .iter()
            .position(|&s| src / s != dst / s)
            .expect("distinct cores differ at some level");
        let mut path = Vec::with_capacity(2 * (k - j));
        for level in j..k {
            let stride = self.strides[level];
            for (core, up) in [(src, true), (dst, false)] {
                let instance = core / stride;
                let rail = self.net.message_rail(level, src, dst, up);
                let next = self.index.len();
                let idx = *self
                    .index
                    .entry((level, instance, up, rail))
                    .or_insert(next);
                if idx == self.capacities.len() {
                    self.capacities
                        .push(self.net.links()[level].uplink_bandwidth);
                }
                path.push(idx);
            }
        }
        (Some(j), path)
    }
}

/// The original fluid solver: rebuilds the flow table, re-solves all
/// rates, and linearly scans for the next event at every completion —
/// O(events × flows × path-len). Kept verbatim (absolute retire
/// tolerances and all) as the correctness oracle the [`FluidSim`] engine
/// is cross-checked against, mirroring the
/// [`max_min_rates_reference`](crate::contention::max_min_rates_reference)
/// pattern.
pub fn fluid_time_reference(net: &NetworkModel, schedules: &[Schedule]) -> f64 {
    let mut table = RefLinkTable::new(net);

    let mut next_round = vec![0usize; schedules.len()];
    let mut active: Vec<RefFlight> = Vec::new();
    let mut now = 0.0f64;
    // Local copies bypass links entirely; the calibrated local rate is the
    // model's probe-observed copy bandwidth.
    let local_bw = net.calibrated_local_rate();
    for (job, schedule) in schedules.iter().enumerate() {
        ref_start_round(
            job,
            schedule,
            &mut next_round[job],
            &mut active,
            &mut table,
            local_bw,
        );
    }
    while !active.is_empty() {
        // Solve rates for messages past their latency phase.
        let flows: Vec<Vec<usize>> = active
            .iter()
            .map(|f| {
                if f.latency_left > 0.0 {
                    Vec::new()
                } else {
                    f.path.clone()
                }
            })
            .collect();
        let rates = max_min_rates(&flows, &table.capacities);
        // Time to the next event: a latency expiry or a completion.
        let mut dt = f64::INFINITY;
        for (f, flight) in active.iter().enumerate() {
            let t = if flight.latency_left > 0.0 {
                flight.latency_left
            } else if flight.path.is_empty() {
                flight.bytes_left / flight.local_rate
            } else {
                flight.bytes_left / rates[f]
            };
            dt = dt.min(t);
        }
        debug_assert!(dt.is_finite() && dt >= 0.0);
        now += dt;
        // Advance all flights.
        for (f, flight) in active.iter_mut().enumerate() {
            if flight.latency_left > 0.0 {
                flight.latency_left -= dt;
                if flight.latency_left < 1e-18 {
                    flight.latency_left = 0.0;
                }
            } else {
                let rate = if flight.path.is_empty() {
                    flight.local_rate
                } else {
                    rates[f]
                };
                flight.bytes_left -= rate * dt;
            }
        }
        // Retire finished flights; collect jobs whose round may be done.
        let mut touched_jobs: Vec<usize> = Vec::new();
        active.retain(|flight| {
            let done = flight.latency_left <= 0.0 && flight.bytes_left <= 1e-9;
            if done {
                touched_jobs.push(flight.job);
            }
            !done
        });
        touched_jobs.sort_unstable();
        touched_jobs.dedup();
        for job in touched_jobs {
            let still_running = active.iter().any(|f| f.job == job);
            if !still_running {
                ref_start_round(
                    job,
                    &schedules[job],
                    &mut next_round[job],
                    &mut active,
                    &mut table,
                    local_bw,
                );
            }
        }
    }
    now
}

fn ref_start_round(
    job: usize,
    schedule: &Schedule,
    next_round: &mut usize,
    active: &mut Vec<RefFlight>,
    table: &mut RefLinkTable<'_>,
    local_bw: f64,
) {
    while *next_round < schedule.rounds.len() {
        let round = &schedule.rounds[*next_round];
        *next_round += 1;
        if round.messages.is_empty() {
            continue;
        }
        for m in &round.messages {
            let (crossing, path) = table.path(m.src, m.dst);
            let latency = crossing
                .map(|j| table.net.links()[j].crossing_latency)
                .unwrap_or(0.0);
            active.push(RefFlight {
                job,
                latency_left: latency,
                bytes_left: m.bytes as f64,
                path,
                local_rate: local_bw,
            });
        }
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LinkParams;
    use crate::schedule::{Message, Round};
    use mre_core::Hierarchy;

    fn toy() -> NetworkModel {
        let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
        NetworkModel::new(
            h,
            vec![
                LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 2.0,
                },
                LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1.0,
                },
                LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 0.5,
                },
            ],
            1000.0,
        )
    }

    #[test]
    fn single_message_matches_round_model() {
        let net = toy();
        let s = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 100)])]);
        let fluid = fluid_time(&net, std::slice::from_ref(&s));
        let rounds = net.schedule_time(&s);
        assert!((fluid - rounds).abs() < 1e-9, "{fluid} vs {rounds}");
    }

    #[test]
    fn sequential_rounds_accumulate() {
        let net = toy();
        let s = Schedule::with(vec![
            Round::with(vec![Message::new(0, 1, 100)]),
            Round::with(vec![Message::new(0, 8, 100)]),
        ]);
        let fluid = fluid_time(&net, std::slice::from_ref(&s));
        let rounds = net.schedule_time(&s);
        assert!((fluid - rounds).abs() < 1e-9);
    }

    #[test]
    fn symmetric_single_round_matches() {
        // One round with contention: fluid and round-based agree exactly.
        let net = toy();
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 100),
            Message::new(1, 9, 100),
        ])]);
        let fluid = fluid_time(&net, std::slice::from_ref(&s));
        assert!((fluid - net.schedule_time(&s)).abs() < 1e-9);
    }

    #[test]
    fn fluid_never_slower_than_lockstep() {
        // Two jobs of different round counts: the barrier-free execution
        // must be at least as fast.
        let net = toy();
        let a = Schedule::with(vec![
            Round::with(vec![Message::new(0, 8, 1000)]),
            Round::with(vec![Message::new(8, 0, 1000)]),
        ]);
        let b = Schedule::with(vec![Round::with(vec![Message::new(1, 9, 10)])]);
        let fluid = fluid_time(&net, &[a.clone(), b.clone()]);
        let lockstep = net.concurrent_time(&[a, b]);
        assert!(fluid <= lockstep + 1e-9, "{fluid} > {lockstep}");
    }

    #[test]
    fn unbalanced_jobs_overlap() {
        // Job A: two sequential cross-node rounds. Job B: one short local
        // round. Lockstep stalls B's contribution to round 2; fluid lets A
        // finish round 2 while nothing else runs. Here fluid must beat the
        // *sum* bound whenever overlap exists.
        let net = toy();
        let a = Schedule::with(vec![
            Round::with(vec![Message::new(0, 8, 500)]),
            Round::with(vec![Message::new(0, 8, 500)]),
        ]);
        // B shares the NIC in lockstep round 1 only.
        let b = Schedule::with(vec![Round::with(vec![Message::new(1, 9, 500)])]);
        let fluid = fluid_time(&net, &[a.clone(), b.clone()]);
        let lockstep = net.concurrent_time(&[a, b]);
        // Fluid: round 1 shares (5 B/s each → 100 s), then round 2 alone
        // (50 s): ≈ latency + 150. Lockstep: identical here, so equality
        // is acceptable — but never slower.
        assert!(fluid <= lockstep + 1e-9);
    }

    #[test]
    fn empty_and_trivial_schedules() {
        let net = toy();
        assert_eq!(fluid_time(&net, &[]), 0.0);
        let empty = Schedule::new();
        assert_eq!(fluid_time(&net, std::slice::from_ref(&empty)), 0.0);
        let zero_round = Schedule::with(vec![Round::new()]);
        assert_eq!(fluid_time(&net, std::slice::from_ref(&zero_round)), 0.0);
    }

    #[test]
    fn local_copies_progress() {
        let net = toy();
        let s = Schedule::with(vec![Round::with(vec![Message::new(3, 3, 2000)])]);
        let fluid = fluid_time(&net, std::slice::from_ref(&s));
        assert!((fluid - 2.0).abs() < 1e-9, "{fluid}");
    }

    #[test]
    fn makespan_dominated_by_longest_job() {
        let net = toy();
        let long = Schedule::with(vec![Round::with(vec![Message::new(0, 4, 100)]); 5]);
        let short = Schedule::with(vec![Round::with(vec![Message::new(8, 12, 10)])]);
        let fluid = fluid_time(&net, &[long.clone(), short]);
        let alone = fluid_time(&net, &[long]);
        // Disjoint paths: the short job cannot slow the long one.
        assert!((fluid - alone).abs() < 1e-9);
    }

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        let scale = a.abs().max(b.abs()).max(1e-300);
        assert!((a - b).abs() <= tol * scale, "{what}: {a} vs {b}");
    }

    #[test]
    fn engine_matches_reference_on_structured_cases() {
        let net = toy();
        let cases: Vec<Vec<Schedule>> = vec![
            vec![Schedule::with(vec![Round::with(vec![Message::new(
                0, 8, 100,
            )])])],
            vec![Schedule::with(vec![
                Round::with(vec![Message::new(0, 1, 100)]),
                Round::with(vec![Message::new(0, 8, 100)]),
            ])],
            vec![
                Schedule::with(vec![
                    Round::with(vec![Message::new(0, 8, 1000)]),
                    Round::with(vec![Message::new(8, 0, 1000)]),
                ]),
                Schedule::with(vec![Round::with(vec![Message::new(1, 9, 10)])]),
            ],
            vec![
                Schedule::with(vec![Round::with(vec![
                    Message::new(0, 8, 500),
                    Message::new(1, 9, 250),
                    Message::new(3, 3, 800),
                ])]),
                Schedule::with(vec![
                    Round::with(vec![Message::new(2, 10, 100)]),
                    Round::with(vec![Message::new(10, 2, 700)]),
                ]),
                Schedule::with(vec![Round::with(vec![Message::new(4, 12, 50)]); 4]),
            ],
        ];
        for schedules in &cases {
            let engine = fluid_time(&net, schedules);
            let reference = fluid_time_reference(&net, schedules);
            assert_close(engine, reference, 1e-9, "engine vs reference");
        }
    }

    #[test]
    fn engine_matches_reference_randomized() {
        use mre_rng::SmallRng;
        let net = toy();
        let p = net.hierarchy().size();
        let mut rng = SmallRng::seed_from_u64(0xF1D5);
        for _ in 0..60 {
            let jobs = rng.gen_range(1usize..5);
            let schedules: Vec<Schedule> = (0..jobs)
                .map(|_| {
                    let rounds = rng.gen_range(1usize..4);
                    Schedule::with(
                        (0..rounds)
                            .map(|_| {
                                let msgs = rng.gen_range(0usize..6);
                                Round::with(
                                    (0..msgs)
                                        .map(|_| {
                                            Message::new(
                                                rng.gen_range(0..p),
                                                rng.gen_range(0..p),
                                                rng.gen_range(1..5000),
                                            )
                                        })
                                        .collect(),
                                )
                            })
                            .collect(),
                    )
                })
                .collect();
            let engine = fluid_time(&net, &schedules);
            let reference = fluid_time_reference(&net, &schedules);
            assert_close(engine, reference, 1e-9, "randomized engine vs reference");
        }
    }

    /// Regression for the absolute `bytes_left <= 1e-9` retire check: a
    /// 1-byte payload on a 1e-9 B/s link takes 1e9 s, but any event
    /// landing in the final second left the residual below the absolute
    /// epsilon and retired the message a full second early. The engine's
    /// relative tolerance keeps byte-scale payloads exact; the reference
    /// (kept verbatim) still exhibits the early retirement.
    #[test]
    fn byte_scale_payloads_are_not_retired_early() {
        let h = Hierarchy::new(vec![2, 2]).unwrap();
        let net = NetworkModel::new(
            h,
            vec![
                LinkParams {
                    uplink_bandwidth: 1e-9,
                    crossing_latency: 0.0,
                },
                LinkParams {
                    uplink_bandwidth: 1.0,
                    crossing_latency: 0.0,
                },
            ],
            2.0,
        );
        // Job A: one byte across the node link — exactly 1e9 seconds.
        let a = Schedule::with(vec![Round::with(vec![Message::new(0, 2, 1)])]);
        // Job B: a local copy finishing at 1e9 − 0.5, inside A's final
        // second, forcing the reference to advance A there.
        let b = Schedule::with(vec![Round::with(vec![Message::new(1, 1, 1_999_999_999)])]);
        let exact = 1.0 / 1e-9;
        let engine = fluid_time(&net, &[a.clone(), b.clone()]);
        assert_close(engine, exact, 1e-9, "engine stays exact");
        let reference = fluid_time_reference(&net, &[a, b]);
        assert!(
            reference < exact - 0.4,
            "reference no longer retires early ({reference} vs {exact}) — \
             the oracle changed?"
        );
    }

    #[test]
    fn batching_collapses_symmetric_rounds() {
        // A symmetric 4-message round: everything finishes at one instant,
        // so the engine needs only the seed solve (rates never change and
        // the final batch leaves no active flows to re-solve).
        let net = toy();
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 100),
            Message::new(1, 9, 100),
            Message::new(2, 10, 100),
            Message::new(3, 11, 100),
        ])]);
        let (t, stats) = fluid_time_with_stats(&net, std::slice::from_ref(&s));
        assert!((t - net.schedule_time(&s)).abs() < 1e-9);
        assert_eq!(stats.flights, 4);
        // 4 latency expiries + 4 completions.
        assert_eq!(stats.events, 8);
        assert!(
            stats.solves <= 2,
            "symmetric round should batch into ≤ 2 solves, got {}",
            stats.solves
        );
        assert!(stats.peak_link_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn timeline_matches_makespan_and_round_structure() {
        let net = toy();
        let a = Schedule::with(vec![
            Round::with(vec![Message::new(0, 8, 500), Message::new(1, 9, 250)]),
            Round::with(vec![Message::new(8, 0, 100)]),
        ]);
        let b = Schedule::with(vec![Round::with(vec![Message::new(2, 2, 800)])]);
        let tl = fluid_timeline(&net, &[a.clone(), b.clone()]);
        let t = fluid_time(&net, &[a, b]);
        assert_eq!(tl.makespan, t, "timeline records the same execution");
        assert_close(tl.last_finish(), tl.makespan, 1e-12, "last finish");
        assert_eq!(tl.num_messages(), 4);
        assert_eq!(tl.total_bytes(), 1650);
        assert_eq!(tl.num_jobs(), 2);
        // Spans are sorted by (job, round, seq); within a job, a round
        // starts exactly when the previous round's last message finished.
        let spans: Vec<_> = tl.job_spans(0).collect();
        assert_eq!(spans.len(), 3);
        assert_eq!((spans[0].round, spans[0].seq), (0, 0));
        let round0_finish = spans[0].finish.max(spans[1].finish);
        assert_close(spans[2].start, round0_finish, 1e-12, "round 1 start");
        for s in tl.spans.iter() {
            assert!(s.finish >= s.start);
        }
        // The local copy has no crossing level; cross-node spans do.
        assert_eq!(tl.job_spans(1).next().unwrap().crossing, None);
        assert_eq!(spans[0].crossing, Some(0));
    }

    #[test]
    fn single_rail_fluid_is_byte_identical() {
        use crate::rail::RailPolicy;
        let plain = toy();
        let schedules = vec![
            Schedule::with(vec![
                Round::with(vec![Message::new(0, 8, 500), Message::new(1, 9, 250)]),
                Round::with(vec![Message::new(8, 0, 100)]),
            ]),
            Schedule::with(vec![Round::with(vec![Message::new(2, 2, 800)])]),
        ];
        let baseline = fluid_time(&plain, &schedules);
        for policy in RailPolicy::ALL {
            let one = toy().with_node_rails(1, policy);
            assert_eq!(
                baseline.to_bits(),
                fluid_time(&one, &schedules).to_bits(),
                "{policy}: nic_count = 1 must not perturb the engine"
            );
        }
    }

    #[test]
    fn two_rails_unserialize_a_shared_nic() {
        use crate::rail::RailPolicy;
        // 0→8 and 1→8 leave the same node; one NIC serializes them
        // (2 + 200/10 = 22 s), two round-robin rails carry one each at the
        // full per-rail bandwidth (2 + 100/10 = 12 s).
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 100),
            Message::new(1, 8, 100),
        ])]);
        let serial = fluid_time(&toy(), std::slice::from_ref(&s));
        assert_close(serial, 22.0, 1e-9, "single NIC serializes");
        let railed = toy().with_node_rails(2, RailPolicy::RoundRobin);
        let striped = fluid_time(&railed, std::slice::from_ref(&s));
        assert_close(striped, 12.0, 1e-9, "two rails stripe");
    }

    #[test]
    fn railed_engine_matches_reference_randomized() {
        use crate::rail::RailPolicy;
        use mre_rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(0xBA11);
        for policy in RailPolicy::ALL {
            for nics in [2usize, 3] {
                let net = toy().with_node_rails(nics, policy);
                let p = net.hierarchy().size();
                for _ in 0..20 {
                    let jobs = rng.gen_range(1usize..4);
                    let schedules: Vec<Schedule> = (0..jobs)
                        .map(|_| {
                            let rounds = rng.gen_range(1usize..4);
                            Schedule::with(
                                (0..rounds)
                                    .map(|_| {
                                        let msgs = rng.gen_range(0usize..6);
                                        Round::with(
                                            (0..msgs)
                                                .map(|_| {
                                                    Message::new(
                                                        rng.gen_range(0..p),
                                                        rng.gen_range(0..p),
                                                        rng.gen_range(1..5000),
                                                    )
                                                })
                                                .collect(),
                                        )
                                    })
                                    .collect(),
                            )
                        })
                        .collect();
                    let engine = fluid_time(&net, &schedules);
                    let reference = fluid_time_reference(&net, &schedules);
                    assert_close(engine, reference, 1e-9, "railed engine vs reference");
                }
            }
        }
    }

    #[test]
    fn timeline_spans_carry_rail_labels() {
        use crate::rail::RailPolicy;
        let net = toy().with_node_rails(2, RailPolicy::RoundRobin);
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 100),
            Message::new(1, 8, 100),
            Message::new(2, 2, 50),
        ])]);
        let tl = fluid_timeline(&net, std::slice::from_ref(&s));
        let by_seq: Vec<_> = tl.job_spans(0).collect();
        // Sender-side rail at the crossing level: (0+8)%2 = 0, (1+8)%2 = 1.
        assert_eq!(by_seq[0].rail, Some(0));
        assert_eq!(by_seq[1].rail, Some(1));
        assert_eq!(by_seq[2].rail, None, "local copies ride no rail");
        // Single-rail models still label crossings (rail 0).
        let tl = fluid_timeline(&toy(), std::slice::from_ref(&s));
        assert_eq!(tl.job_spans(0).next().unwrap().rail, Some(0));
    }

    #[test]
    fn engine_reuse_across_runs_is_consistent() {
        // The same engine costs different batches back-to-back; caches
        // persist, results must match fresh engines.
        let net = toy();
        let mut sim = FluidSim::new(&net);
        let a = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 100)])]);
        let b = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 100),
            Message::new(1, 9, 100),
        ])]);
        let first = sim.run(std::slice::from_ref(&a));
        let second = sim.run(std::slice::from_ref(&b));
        let third = sim.run(std::slice::from_ref(&a));
        assert_eq!(first, third, "reused engine must be deterministic");
        assert_eq!(first, fluid_time(&net, std::slice::from_ref(&a)));
        assert_eq!(second, fluid_time(&net, std::slice::from_ref(&b)));
        assert_eq!(sim.stats().flights, 4);
    }
}
