//! Fluid event-driven network simulation.
//!
//! The lockstep model ([`NetworkModel::concurrent_time`]) synchronizes
//! round `i` of every communicator — a pessimistic barrier that real MPI
//! does not have: independent communicators progress at their own pace and
//! only their *own* round structure orders their messages.
//!
//! The fluid simulator removes the cross-communicator barrier. Each
//! schedule is a job whose rounds execute in sequence; all messages of all
//! currently-active rounds share the network max-min fairly; whenever a
//! round completes (all its messages have transferred) the owning job
//! starts its next round and the rates are re-solved. This is the standard
//! fluid-flow approximation of packet networks, driven by completion
//! events.
//!
//! Latency is modeled as a per-message head delay during which the message
//! consumes no bandwidth.
//!
//! Properties (tested):
//! * single schedule ⇒ identical to the round-based cost;
//! * multiple schedules ⇒ usually faster than the lockstep cost, and
//!   always at least the longest job's isolated cost. (Removing barriers
//!   is not a strict improvement: a barrier occasionally avoids convoy
//!   sharing, so tiny excesses over lockstep are possible and allowed.)
//! * work conservation: no traversed link is ever oversubscribed.

use crate::contention::max_min_rates;
use crate::network::NetworkModel;
use crate::schedule::Schedule;
use std::collections::HashMap;

/// State of one in-flight message.
struct Flight {
    /// Index of the owning job (schedule).
    job: usize,
    /// Remaining head latency (s); bandwidth is only consumed once zero.
    latency_left: f64,
    /// Remaining payload bytes.
    bytes_left: f64,
    /// Dense link indices the message traverses (empty = local copy).
    path: Vec<usize>,
    /// Local-copy rate when `path` is empty.
    local_rate: f64,
}

/// Dense directed-link table shared by one fluid simulation.
struct LinkTable<'a> {
    net: &'a NetworkModel,
    strides: Vec<usize>,
    index: HashMap<(usize, usize, bool), usize>,
    capacities: Vec<f64>,
}

impl<'a> LinkTable<'a> {
    fn new(net: &'a NetworkModel) -> Self {
        Self {
            net,
            strides: net.hierarchy().strides(),
            index: HashMap::new(),
            capacities: Vec::new(),
        }
    }

    /// (crossing level, dense link path) of a message.
    fn path(&mut self, src: usize, dst: usize) -> (Option<usize>, Vec<usize>) {
        if src == dst {
            return (None, Vec::new());
        }
        let k = self.net.hierarchy().depth();
        let j = self
            .strides
            .iter()
            .position(|&s| src / s != dst / s)
            .expect("distinct cores differ at some level");
        let mut path = Vec::with_capacity(2 * (k - j));
        for level in j..k {
            let stride = self.strides[level];
            for (core, up) in [(src, true), (dst, false)] {
                let instance = core / stride;
                let next = self.index.len();
                let idx = *self.index.entry((level, instance, up)).or_insert(next);
                if idx == self.capacities.len() {
                    self.capacities
                        .push(self.net.links()[level].uplink_bandwidth);
                }
                path.push(idx);
            }
        }
        (Some(j), path)
    }
}

/// Simulates `schedules` concurrently without cross-schedule barriers and
/// returns the makespan (the time at which every schedule has finished).
///
/// Every schedule keeps its internal round ordering: round `i+1` of a
/// schedule starts only when all messages of its round `i` have been
/// delivered.
pub fn fluid_time(net: &NetworkModel, schedules: &[Schedule]) -> f64 {
    let mut table = LinkTable::new(net);

    let mut next_round = vec![0usize; schedules.len()];
    let mut active: Vec<Flight> = Vec::new();
    let mut now = 0.0f64;
    // Seed every job's first round.
    let local_bw = {
        // Local copies bypass links entirely; reuse the model's calibrated
        // local rate via a probe message of known size.
        let probe = crate::schedule::Message::new(0, 0, 1_000_000);
        1_000_000.0 / net.message_time(probe)
    };
    for (job, schedule) in schedules.iter().enumerate() {
        start_round(
            job,
            schedule,
            &mut next_round[job],
            &mut active,
            &mut table,
            local_bw,
        );
    }
    while !active.is_empty() {
        // Solve rates for messages past their latency phase.
        let flows: Vec<Vec<usize>> = active
            .iter()
            .map(|f| {
                if f.latency_left > 0.0 {
                    Vec::new()
                } else {
                    f.path.clone()
                }
            })
            .collect();
        let rates = max_min_rates(&flows, &table.capacities);
        // Time to the next event: a latency expiry or a completion.
        let mut dt = f64::INFINITY;
        for (f, flight) in active.iter().enumerate() {
            let t = if flight.latency_left > 0.0 {
                flight.latency_left
            } else if flight.path.is_empty() {
                flight.bytes_left / flight.local_rate
            } else {
                flight.bytes_left / rates[f]
            };
            dt = dt.min(t);
        }
        debug_assert!(dt.is_finite() && dt >= 0.0);
        now += dt;
        // Advance all flights.
        for (f, flight) in active.iter_mut().enumerate() {
            if flight.latency_left > 0.0 {
                flight.latency_left -= dt;
                if flight.latency_left < 1e-18 {
                    flight.latency_left = 0.0;
                }
            } else {
                let rate = if flight.path.is_empty() {
                    flight.local_rate
                } else {
                    rates[f]
                };
                flight.bytes_left -= rate * dt;
            }
        }
        // Retire finished flights; collect jobs whose round may be done.
        let mut touched_jobs: Vec<usize> = Vec::new();
        active.retain(|flight| {
            let done = flight.latency_left <= 0.0 && flight.bytes_left <= 1e-9;
            if done {
                touched_jobs.push(flight.job);
            }
            !done
        });
        touched_jobs.sort_unstable();
        touched_jobs.dedup();
        for job in touched_jobs {
            let still_running = active.iter().any(|f| f.job == job);
            if !still_running {
                start_round(
                    job,
                    &schedules[job],
                    &mut next_round[job],
                    &mut active,
                    &mut table,
                    local_bw,
                );
            }
        }
    }
    now
}

fn start_round(
    job: usize,
    schedule: &Schedule,
    next_round: &mut usize,
    active: &mut Vec<Flight>,
    table: &mut LinkTable<'_>,
    local_bw: f64,
) {
    while *next_round < schedule.rounds.len() {
        let round = &schedule.rounds[*next_round];
        *next_round += 1;
        if round.messages.is_empty() {
            continue;
        }
        for m in &round.messages {
            let (crossing, path) = table.path(m.src, m.dst);
            let latency = crossing
                .map(|j| table.net.links()[j].crossing_latency)
                .unwrap_or(0.0);
            active.push(Flight {
                job,
                latency_left: latency,
                bytes_left: m.bytes as f64,
                path,
                local_rate: local_bw,
            });
        }
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LinkParams;
    use crate::schedule::{Message, Round};
    use mre_core::Hierarchy;

    fn toy() -> NetworkModel {
        let h = Hierarchy::new(vec![2, 2, 4]).unwrap();
        NetworkModel::new(
            h,
            vec![
                LinkParams {
                    uplink_bandwidth: 10.0,
                    crossing_latency: 2.0,
                },
                LinkParams {
                    uplink_bandwidth: 40.0,
                    crossing_latency: 1.0,
                },
                LinkParams {
                    uplink_bandwidth: 100.0,
                    crossing_latency: 0.5,
                },
            ],
            1000.0,
        )
    }

    #[test]
    fn single_message_matches_round_model() {
        let net = toy();
        let s = Schedule::with(vec![Round::with(vec![Message::new(0, 8, 100)])]);
        let fluid = fluid_time(&net, std::slice::from_ref(&s));
        let rounds = net.schedule_time(&s);
        assert!((fluid - rounds).abs() < 1e-9, "{fluid} vs {rounds}");
    }

    #[test]
    fn sequential_rounds_accumulate() {
        let net = toy();
        let s = Schedule::with(vec![
            Round::with(vec![Message::new(0, 1, 100)]),
            Round::with(vec![Message::new(0, 8, 100)]),
        ]);
        let fluid = fluid_time(&net, std::slice::from_ref(&s));
        let rounds = net.schedule_time(&s);
        assert!((fluid - rounds).abs() < 1e-9);
    }

    #[test]
    fn symmetric_single_round_matches() {
        // One round with contention: fluid and round-based agree exactly.
        let net = toy();
        let s = Schedule::with(vec![Round::with(vec![
            Message::new(0, 8, 100),
            Message::new(1, 9, 100),
        ])]);
        let fluid = fluid_time(&net, std::slice::from_ref(&s));
        assert!((fluid - net.schedule_time(&s)).abs() < 1e-9);
    }

    #[test]
    fn fluid_never_slower_than_lockstep() {
        // Two jobs of different round counts: the barrier-free execution
        // must be at least as fast.
        let net = toy();
        let a = Schedule::with(vec![
            Round::with(vec![Message::new(0, 8, 1000)]),
            Round::with(vec![Message::new(8, 0, 1000)]),
        ]);
        let b = Schedule::with(vec![Round::with(vec![Message::new(1, 9, 10)])]);
        let fluid = fluid_time(&net, &[a.clone(), b.clone()]);
        let lockstep = net.concurrent_time(&[a, b]);
        assert!(fluid <= lockstep + 1e-9, "{fluid} > {lockstep}");
    }

    #[test]
    fn unbalanced_jobs_overlap() {
        // Job A: two sequential cross-node rounds. Job B: one short local
        // round. Lockstep stalls B's contribution to round 2; fluid lets A
        // finish round 2 while nothing else runs. Here fluid must beat the
        // *sum* bound whenever overlap exists.
        let net = toy();
        let a = Schedule::with(vec![
            Round::with(vec![Message::new(0, 8, 500)]),
            Round::with(vec![Message::new(0, 8, 500)]),
        ]);
        // B shares the NIC in lockstep round 1 only.
        let b = Schedule::with(vec![Round::with(vec![Message::new(1, 9, 500)])]);
        let fluid = fluid_time(&net, &[a.clone(), b.clone()]);
        let lockstep = net.concurrent_time(&[a, b]);
        // Fluid: round 1 shares (5 B/s each → 100 s), then round 2 alone
        // (50 s): ≈ latency + 150. Lockstep: identical here, so equality
        // is acceptable — but never slower.
        assert!(fluid <= lockstep + 1e-9);
    }

    #[test]
    fn empty_and_trivial_schedules() {
        let net = toy();
        assert_eq!(fluid_time(&net, &[]), 0.0);
        let empty = Schedule::new();
        assert_eq!(fluid_time(&net, std::slice::from_ref(&empty)), 0.0);
        let zero_round = Schedule::with(vec![Round::new()]);
        assert_eq!(fluid_time(&net, std::slice::from_ref(&zero_round)), 0.0);
    }

    #[test]
    fn local_copies_progress() {
        let net = toy();
        let s = Schedule::with(vec![Round::with(vec![Message::new(3, 3, 2000)])]);
        let fluid = fluid_time(&net, std::slice::from_ref(&s));
        assert!((fluid - 2.0).abs() < 1e-9, "{fluid}");
    }

    #[test]
    fn makespan_dominated_by_longest_job() {
        let net = toy();
        let long = Schedule::with(vec![Round::with(vec![Message::new(0, 4, 100)]); 5]);
        let short = Schedule::with(vec![Round::with(vec![Message::new(8, 12, 10)])]);
        let fluid = fluid_time(&net, &[long.clone(), short]);
        let alone = fluid_time(&net, &[long]);
        // Disjoint paths: the short job cannot slow the long one.
        assert!((fluid - alone).abs() < 1e-9);
    }
}
