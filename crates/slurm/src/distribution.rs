//! `--distribution` policies and their mixed-radix order equivalents.
//!
//! Slurm can only vary the placement policy at two hierarchy levels —
//! compute node and socket (§3.4 of the paper). On a hierarchy
//! `⟦node, socket, inner…⟧` each spelling corresponds to exactly one
//! enumeration order:
//!
//! | Slurm spelling   | order on ⟦2,2,4⟧ | general order                  |
//! |------------------|------------------|--------------------------------|
//! | `block:block`    | `[2,1,0]`        | reversal (identity mapping)    |
//! | `block:cyclic`   | `[1,2,0]`        | `[1, k−1 … 2, 0]`              |
//! | `cyclic:block`   | `[0,2,1]`        | `[0, k−1 … 2, 1]`              |
//! | `cyclic:cyclic`  | `[0,1,2]`        | `[0, 1, k−1 … 2]`              |
//! | `plane=n`        | `[2,0,1]` (n=4)  | inner suffix, node, the rest   |
//!
//! Orders outside this table (e.g. `[1,0,2]`, or anything permuting a
//! *fake* level) cannot be spelled with `--distribution` — that is the
//! paper's point.

use mre_core::{Error, Hierarchy, Permutation};

/// A `--distribution` policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// `block:block` — fill nodes, then sockets, then cores sequentially.
    BlockBlock,
    /// `block:cyclic` — fill nodes in blocks, round-robin over sockets
    /// inside each node.
    BlockCyclic,
    /// `cyclic:block` — round-robin over nodes, fill sockets inside.
    CyclicBlock,
    /// `cyclic:cyclic` — round-robin over nodes and over sockets.
    CyclicCyclic,
    /// `plane=n` — distribute blocks of `n` consecutive cores round-robin
    /// over nodes.
    Plane(usize),
}

impl Distribution {
    /// All block/cyclic spellings (excluding `plane`, which is
    /// parameterized).
    pub fn all_block_cyclic() -> [Distribution; 4] {
        [
            Distribution::BlockBlock,
            Distribution::BlockCyclic,
            Distribution::CyclicBlock,
            Distribution::CyclicCyclic,
        ]
    }

    /// The Slurm option spelling.
    pub fn spelling(&self) -> String {
        match self {
            Distribution::BlockBlock => "block:block".into(),
            Distribution::BlockCyclic => "block:cyclic".into(),
            Distribution::CyclicBlock => "cyclic:block".into(),
            Distribution::CyclicCyclic => "cyclic:cyclic".into(),
            Distribution::Plane(n) => format!("plane={n}"),
        }
    }

    /// Parses a Slurm spelling.
    pub fn parse(text: &str) -> Result<Self, Error> {
        match text.trim() {
            "block:block" | "block" => Ok(Distribution::BlockBlock),
            "block:cyclic" => Ok(Distribution::BlockCyclic),
            "cyclic:block" | "cyclic" => Ok(Distribution::CyclicBlock),
            "cyclic:cyclic" => Ok(Distribution::CyclicCyclic),
            other => {
                if let Some(n) = other.strip_prefix("plane=") {
                    let n = n.parse::<usize>().map_err(|e| Error::Parse {
                        message: format!("bad plane size: {e}"),
                    })?;
                    if n == 0 {
                        return Err(Error::Parse {
                            message: "plane size 0".into(),
                        });
                    }
                    Ok(Distribution::Plane(n))
                } else {
                    Err(Error::Parse {
                        message: format!("unknown distribution {other:?}"),
                    })
                }
            }
        }
    }

    /// The enumeration order this policy is equivalent to on `h`
    /// (whose level 0 must be the node level and level 1 the socket
    /// level). Returns an error for a `plane=n` whose block size does not
    /// align with a suffix of the hierarchy.
    pub fn to_order(&self, h: &Hierarchy) -> Result<Permutation, Error> {
        let k = h.depth();
        if k < 2 {
            return Err(Error::LevelOutOfRange { level: 1, depth: k });
        }
        let image: Vec<usize> = match self {
            // Fill sequentially: innermost varies fastest.
            Distribution::BlockBlock => (0..k).rev().collect(),
            // Socket varies fastest, then the inner levels, node last.
            Distribution::BlockCyclic => {
                let mut v = vec![1];
                v.extend((2..k).rev());
                v.push(0);
                v
            }
            // Node varies fastest, inner levels next, socket last.
            Distribution::CyclicBlock => {
                let mut v = vec![0];
                v.extend((2..k).rev());
                v.push(1);
                v
            }
            // Node fastest, then socket, then inner levels.
            Distribution::CyclicCyclic => {
                let mut v = vec![0, 1];
                v.extend((2..k).rev());
                v
            }
            Distribution::Plane(n) => {
                // Find the level t such that the inner suffix t..k has
                // exactly n cores; blocks of that suffix go round-robin
                // over nodes, remaining levels last.
                let mut product = 1usize;
                let mut t = k;
                while t > 0 && product < *n {
                    t -= 1;
                    product *= h.level(t);
                }
                if product != *n || t == 0 {
                    return Err(Error::Parse {
                        message: format!("plane={n} does not align with hierarchy {h}"),
                    });
                }
                let mut v: Vec<usize> = (t..k).rev().collect();
                v.push(0);
                v.extend((1..t).rev());
                v
            }
        };
        Permutation::new(image)
    }

    /// Finds the spelling equivalent to `sigma` on `h`, if any — the
    /// captions of the paper's Fig. 2. Planes are probed at every suffix
    /// block size.
    pub fn from_order(h: &Hierarchy, sigma: &Permutation) -> Option<Distribution> {
        let mut candidates: Vec<Distribution> = Distribution::all_block_cyclic().to_vec();
        let mut product = 1usize;
        for t in (1..h.depth()).rev() {
            product *= h.level(t);
            candidates.push(Distribution::Plane(product));
        }
        candidates
            .into_iter()
            .find(|d| d.to_order(h).ok().as_ref() == Some(sigma))
    }

    /// The default mapping of each paper machine: Hydra's Slurm default is
    /// `block:cyclic` (§4.2), LUMI's is `block:block` (Fig. 5/7 captions
    /// mark the reversal order as the default).
    pub fn hydra_default() -> Distribution {
        Distribution::BlockCyclic
    }

    /// See [`Distribution::hydra_default`].
    pub fn lumi_default() -> Distribution {
        Distribution::BlockBlock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h224() -> Hierarchy {
        Hierarchy::new(vec![2, 2, 4]).unwrap()
    }

    fn sig(order: &[usize]) -> Permutation {
        Permutation::new(order.to_vec()).unwrap()
    }

    #[test]
    fn figure2_caption_equivalences() {
        // Fig. 2 of the paper annotates each order of ⟦2,2,4⟧ with its
        // Slurm spelling.
        let h = h224();
        let cases = [
            (Distribution::CyclicCyclic, vec![0, 1, 2]),
            (Distribution::CyclicBlock, vec![0, 2, 1]),
            (Distribution::BlockCyclic, vec![1, 2, 0]),
            (Distribution::Plane(4), vec![2, 0, 1]),
            (Distribution::BlockBlock, vec![2, 1, 0]),
        ];
        for (dist, order) in cases {
            assert_eq!(
                dist.to_order(&h).unwrap().as_slice(),
                order.as_slice(),
                "{}",
                dist.spelling()
            );
            assert_eq!(Distribution::from_order(&h, &sig(&order)), Some(dist));
        }
    }

    #[test]
    fn order_102_is_not_expressible() {
        // Fig. 2c: "[1,0,2] — Not possible".
        let h = h224();
        assert_eq!(Distribution::from_order(&h, &sig(&[1, 0, 2])), None);
    }

    #[test]
    fn hydra_default_is_1320() {
        // §4.2: "[1,3,2,0] is the mapping Slurm would set up by default on
        // Hydra, identical to --distribution=block:cyclic".
        let hydra = Hierarchy::new(vec![16, 2, 2, 8]).unwrap();
        let order = Distribution::hydra_default().to_order(&hydra).unwrap();
        assert_eq!(order.as_slice(), &[1, 3, 2, 0]);
    }

    #[test]
    fn lumi_default_is_43210() {
        // Fig. 5/7 captions: [4,3,2,1,0] is the SLURM default mapping.
        let lumi = Hierarchy::new(vec![16, 2, 4, 2, 8]).unwrap();
        let order = Distribution::lumi_default().to_order(&lumi).unwrap();
        assert_eq!(order.as_slice(), &[4, 3, 2, 1, 0]);
    }

    #[test]
    fn fake_level_orders_are_not_expressible() {
        // On ⟦16,2,2,8⟧ any order that moves the fake group level away
        // from its natural position has no Slurm spelling.
        let hydra = Hierarchy::new(vec![16, 2, 2, 8]).unwrap();
        assert_eq!(Distribution::from_order(&hydra, &sig(&[2, 1, 0, 3])), None);
        assert_eq!(Distribution::from_order(&hydra, &sig(&[3, 1, 0, 2])), None);
    }

    #[test]
    fn plane_alignment() {
        let hydra = Hierarchy::new(vec![16, 2, 2, 8]).unwrap();
        // plane=8 → blocks of one fake group; plane=16 → one socket.
        assert_eq!(
            Distribution::Plane(8).to_order(&hydra).unwrap().as_slice(),
            &[3, 0, 2, 1]
        );
        assert_eq!(
            Distribution::Plane(16).to_order(&hydra).unwrap().as_slice(),
            &[3, 2, 0, 1]
        );
        // plane = whole node degenerates to block:block.
        assert_eq!(
            Distribution::Plane(32).to_order(&hydra).unwrap().as_slice(),
            &[3, 2, 1, 0]
        );
        // Misaligned plane sizes error out.
        assert!(Distribution::Plane(5).to_order(&hydra).is_err());
        // plane larger than a node cannot align (t reaches 0).
        assert!(Distribution::Plane(64).to_order(&hydra).is_err());
    }

    #[test]
    fn parse_and_spelling_roundtrip() {
        for d in Distribution::all_block_cyclic() {
            assert_eq!(Distribution::parse(&d.spelling()).unwrap(), d);
        }
        assert_eq!(
            Distribution::parse("plane=4").unwrap(),
            Distribution::Plane(4)
        );
        assert!(Distribution::parse("plane=0").is_err());
        assert!(Distribution::parse("snake:block").is_err());
    }

    #[test]
    fn to_order_requires_two_levels() {
        let flat = Hierarchy::new(vec![8]).unwrap();
        assert!(Distribution::BlockBlock.to_order(&flat).is_err());
    }
}
