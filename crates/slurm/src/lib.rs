//! # mre-slurm — launcher policies
//!
//! A substitute for the Slurm process-placement machinery the paper
//! compares against and extends:
//!
//! * [`distribution`] — the `--distribution=<node>:<socket>` policies
//!   (`block`/`cyclic` at the node and socket levels, plus `plane=<n>`),
//!   expressed as the mixed-radix orders they are equivalent to (Fig. 2 of
//!   the paper maps each order to its Slurm spelling — and shows order
//!   `[1,0,2]` has none);
//! * [`binding`] — explicit placements: `--cpu-bind=map_cpu:<list>` (the
//!   vehicle of the paper's §3.4 core-selection use case) and rankfiles.
//!
//! The launcher's product is a [`binding::JobLayout`]: for every MPI rank,
//! the global core id it is bound to.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binding;
pub mod distribution;

pub use binding::JobLayout;
pub use distribution::Distribution;
