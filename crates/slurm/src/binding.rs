//! Explicit placements: job layouts from distributions, `map_cpu` lists
//! and rankfiles.
//!
//! A [`JobLayout`] is the launcher's end product: `placement[rank]` is the
//! global core id (sequential resource id of the machine hierarchy) that
//! MPI rank is bound to. Layouts from all three sources — a
//! `--distribution` policy, a `--cpu-bind=map_cpu:<list>` list applied on
//! every node (§3.4's Algorithm 3 output), or a rankfile — are
//! interchangeable downstream.

use crate::distribution::Distribution;
use mre_core::core_select::map_cpu_list;
use mre_core::rankfile::Rankfile;
use mre_core::{Error, Hierarchy, Permutation, RankReordering};

/// A complete process-to-core binding for one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobLayout {
    placement: Vec<usize>,
}

impl JobLayout {
    /// Builds a layout directly from a placement vector (rank → core).
    ///
    /// Core ids must be distinct.
    pub fn from_placement(placement: Vec<usize>) -> Result<Self, Error> {
        let mut seen = std::collections::HashSet::with_capacity(placement.len());
        for &core in &placement {
            if !seen.insert(core) {
                return Err(Error::Parse {
                    message: format!("core {core} bound twice"),
                });
            }
        }
        Ok(Self { placement })
    }

    /// Layout of a full-machine job under a `--distribution` policy:
    /// equivalent to the policy's enumeration order.
    pub fn from_distribution(machine: &Hierarchy, dist: Distribution) -> Result<Self, Error> {
        let order = dist.to_order(machine)?;
        Self::from_order(machine, &order)
    }

    /// Layout of a full-machine job under an arbitrary enumeration order
    /// (the paper's rank-reordering applied at launch time, e.g. via a
    /// rankfile).
    pub fn from_order(machine: &Hierarchy, sigma: &Permutation) -> Result<Self, Error> {
        let reordering = RankReordering::new(machine, sigma)?;
        // Rank r runs on the r-th core of the enumeration.
        Ok(Self {
            placement: reordering.inverse().to_vec(),
        })
    }

    /// Layout of a partial-node job from a per-node `map_cpu` core list
    /// (Slurm applies the same list on every node and distributes ranks
    /// over nodes in blocks): rank `r` = node `r / n`, list slot `r % n`.
    pub fn from_map_cpu(
        nodes: usize,
        cores_per_node: usize,
        list: &[usize],
    ) -> Result<Self, Error> {
        let n = list.len();
        if n == 0 || n > cores_per_node {
            return Err(Error::TooManyCores {
                requested: n,
                available: cores_per_node,
            });
        }
        if let Some(&bad) = list.iter().find(|&&c| c >= cores_per_node) {
            return Err(Error::RankOutOfRange {
                rank: bad,
                size: cores_per_node,
            });
        }
        let mut placement = Vec::with_capacity(nodes * n);
        for node in 0..nodes {
            for &core in list {
                placement.push(node * cores_per_node + core);
            }
        }
        Self::from_placement(placement)
    }

    /// Layout from the paper's §3.4 pipeline: Algorithm 3 generates the
    /// per-node list for (node hierarchy, order, process count per node),
    /// then the list is applied on every node.
    pub fn from_core_selection(
        nodes: usize,
        node_h: &Hierarchy,
        sigma: &Permutation,
        procs_per_node: usize,
    ) -> Result<Self, Error> {
        let list = map_cpu_list(node_h, sigma, procs_per_node)?;
        Self::from_map_cpu(nodes, node_h.size(), &list)
    }

    /// Layout from a rankfile.
    pub fn from_rankfile(machine: &Hierarchy, rf: &Rankfile) -> Result<Self, Error> {
        Self::from_placement(rf.placement(machine))
    }

    /// Number of ranks.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.placement.len()
    }

    /// The core bound to `rank`.
    pub fn core_of(&self, rank: usize) -> usize {
        self.placement[rank]
    }

    /// The full placement vector (rank → core).
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// The cores used, sorted (the "core set" of the paper's Fig. 9
    /// grouping).
    pub fn core_set(&self) -> Vec<usize> {
        let mut set = self.placement.clone();
        set.sort_unstable();
        set
    }

    /// The members (cores in rank order) of each subcommunicator of
    /// `subcomm_size` consecutive ranks — the quotient-coloring of the
    /// paper, applied to this layout.
    pub fn subcomm_members(&self, subcomm_size: usize) -> Result<Vec<Vec<usize>>, Error> {
        if subcomm_size == 0 || !self.placement.len().is_multiple_of(subcomm_size) {
            return Err(Error::IndivisibleSubcomm {
                world: self.placement.len(),
                subcomm: subcomm_size,
            });
        }
        Ok(self
            .placement
            .chunks(subcomm_size)
            .map(|chunk| chunk.to_vec())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h224() -> Hierarchy {
        Hierarchy::new(vec![2, 2, 4]).unwrap()
    }

    #[test]
    fn block_block_is_identity_layout() {
        let layout = JobLayout::from_distribution(&h224(), Distribution::BlockBlock).unwrap();
        assert_eq!(layout.placement(), (0..16).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn cyclic_cyclic_round_robins_nodes_then_sockets() {
        let layout = JobLayout::from_distribution(&h224(), Distribution::CyclicCyclic).unwrap();
        // Rank 0 → core 0; rank 1 → node 1 core 0 (core 8); rank 2 →
        // node 0 socket 1 (core 4); rank 3 → core 12.
        assert_eq!(&layout.placement()[..4], &[0, 8, 4, 12]);
    }

    #[test]
    fn order_layout_matches_distribution_layout() {
        let h = h224();
        for dist in Distribution::all_block_cyclic() {
            let a = JobLayout::from_distribution(&h, dist).unwrap();
            let b = JobLayout::from_order(&h, &dist.to_order(&h).unwrap()).unwrap();
            assert_eq!(a, b, "{}", dist.spelling());
        }
    }

    #[test]
    fn map_cpu_applies_same_list_per_node() {
        // 2 nodes × 8 cores, list [0, 4, 1, 5].
        let layout = JobLayout::from_map_cpu(2, 8, &[0, 4, 1, 5]).unwrap();
        assert_eq!(layout.placement(), &[0, 4, 1, 5, 8, 12, 9, 13]);
        assert_eq!(layout.len(), 8);
    }

    #[test]
    fn map_cpu_validates() {
        assert!(JobLayout::from_map_cpu(2, 8, &[]).is_err());
        assert!(JobLayout::from_map_cpu(2, 8, &[0; 9]).is_err());
        assert!(JobLayout::from_map_cpu(2, 8, &[8]).is_err());
        assert!(JobLayout::from_map_cpu(2, 8, &[1, 1]).is_err());
    }

    #[test]
    fn core_selection_pipeline() {
        // Fig. 1 machine: per-node ⟦2,4⟧, 2 nodes, 4 procs/node,
        // socket-cyclic order.
        let node = Hierarchy::new(vec![2, 4]).unwrap();
        let sigma = Permutation::new(vec![0, 1]).unwrap();
        let layout = JobLayout::from_core_selection(2, &node, &sigma, 4).unwrap();
        assert_eq!(layout.placement(), &[0, 4, 1, 5, 8, 12, 9, 13]);
    }

    #[test]
    fn rankfile_layout_roundtrip() {
        let h = h224();
        let sigma = Permutation::new(vec![0, 2, 1]).unwrap();
        let rf = Rankfile::from_order(&h, &sigma).unwrap();
        let via_rankfile = JobLayout::from_rankfile(&h, &rf).unwrap();
        let via_order = JobLayout::from_order(&h, &sigma).unwrap();
        assert_eq!(via_rankfile, via_order);
    }

    #[test]
    fn core_set_sorts_and_subcomms_chunk() {
        let layout = JobLayout::from_map_cpu(2, 8, &[4, 0]).unwrap();
        assert_eq!(layout.core_set(), vec![0, 4, 8, 12]);
        let subs = layout.subcomm_members(2).unwrap();
        assert_eq!(subs, vec![vec![4, 0], vec![12, 8]]);
        assert!(layout.subcomm_members(3).is_err());
    }

    #[test]
    fn duplicate_cores_rejected() {
        assert!(JobLayout::from_placement(vec![0, 1, 0]).is_err());
    }
}
